"""Ablation — pre-matching clustering strategy.

The paper clusters match links with transitive closure (connected
components); center/star clustering are the standard entity-resolution
remedies against frequent-name chaining.

Expected shape: connected components + the direct-pair vertex guard is
the best overall configuration; center/star reach similar precision on
their own (they solve the same mega-cluster problem at clustering time)
at some recall cost, and they make the guard redundant.
"""

from benchlib import once, write_result

from repro.core.clustering import ALL_STRATEGIES
from repro.core.config import LinkageConfig
from repro.evaluation.experiments import run_linkage
from repro.evaluation.reporting import format_table


def run_clustering_ablation(workload):
    results = {}
    for strategy in ALL_STRATEGIES:
        for guard in (True, False):
            label = f"{strategy}, guard {'on' if guard else 'off'}"
            config = LinkageConfig(
                clustering=strategy, require_direct_pair_threshold=guard
            )
            results[label] = run_linkage(workload, config)
    return results


def test_ablation_clustering(benchmark, pair_workload):
    results = once(benchmark, run_clustering_ablation, pair_workload)
    rows = []
    for label, quality in results.items():
        rp, rr, rf = quality.record.as_percentages()
        gf = quality.group.as_percentages()[2]
        rows.append([label, f"{rp:.1f}", f"{rr:.1f}", f"{rf:.1f}", f"{gf:.1f}"])
    text = format_table(
        ["configuration", "rec P", "rec R", "rec F", "grp F"],
        rows,
        title="Ablation: pre-matching clustering strategy",
    )
    write_result("ablation_clustering.txt", text)

    best = results["connected-components, guard on"]
    worst = results["connected-components, guard off"]
    assert best.record.f_measure >= worst.record.f_measure - 0.001
    # Center clustering neutralises the mega-cluster problem on its own:
    # with or without the guard it lands in the same place.
    center_on = results["center, guard on"].record.f_measure
    center_off = results["center, guard off"].record.f_measure
    assert abs(center_on - center_off) < 0.03
