"""Helpers shared by the table/figure regeneration benchmarks."""

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Initial households of the 1871/1881 linkage workload.
PAIR_HOUSEHOLDS = int(os.environ.get("REPRO_BENCH_HOUSEHOLDS", "250"))
#: Initial households of the 6-snapshot evolution series.
SERIES_HOUSEHOLDS = int(os.environ.get("REPRO_BENCH_SERIES_HOUSEHOLDS", "100"))
BENCH_SEED = 20170321


def write_result(name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


def once(benchmark, func, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
