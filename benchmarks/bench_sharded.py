"""Sharded out-of-core linkage — peak RSS and wall clock vs in-RAM.

The question behind :mod:`repro.sharding`: what does it cost, and what
does it buy, to run Algorithm 1 one blocking-closed shard at a time
instead of holding the whole country in memory?  Each grid row links
one country-scale snapshot pair (:mod:`repro.datagen.country`, region
blocking) both ways and reports

* wall clock per variant,
* **peak RSS per variant** — each variant runs in its own subprocess so
  ``ru_maxrss`` (monotone within a process) measures exactly one
  pipeline, and
* the decision-ledger hash (:func:`repro.checkpoint.decision_ledger_hash`),
  asserted identical between the variants: sharding is licensed to
  change effort and memory, never decisions.

The in-RAM variant loads the full datasets from the same shard store
first, so both variants read identical bytes and the comparison is
pipeline-resident memory, not parsing overhead.

Modes:

* ``--quick`` — CI smoke (the ``scale-smoke`` job): a small country,
  writes ``results/sharded_quick.{txt,json}`` plus a copy of the shard
  store manifest for the artifact upload.
* ``--check-baseline`` — additionally gate against the committed
  ``results/baseline_sharded_quick.json``: the decision hash must equal
  the pinned hash, and the sharded variant's peak RSS must stay under
  the pinned ceiling.
* default (nightly) — the scaling grid (10k and 100k households;
  ``--max-households 200000`` extends it).  Here the acceptance gate is
  the point of the subsystem: **sharded peak RSS strictly below in-RAM
  peak RSS** on every row of at least 10k households.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from benchlib import BENCH_SEED, RESULTS_DIR, write_result

#: (total households, regions, shards) per full-mode row.
FULL_GRID = (
    (10_000, 50, 16),
    (100_000, 500, 32),
)
EXTENDED_ROW = (200_000, 1_000, 64)
QUICK_ROW = (600, 4, 4)

BASELINE_NAME = "baseline_sharded_quick.json"


# -- subprocess workers ------------------------------------------------------


def _worker(mode: str, store_dir: str, shards: int) -> int:
    """Run one variant and print its measurements as JSON (subprocess
    entry point; peak RSS is this process's own ``ru_maxrss``)."""
    import resource

    from repro.checkpoint import decision_ledger_hash
    from repro.core.config import LinkageConfig
    from repro.core.pipeline import link_datasets
    from repro.sharding import (
        ShardStore,
        ShardedRecordSource,
        link_datasets_sharded,
    )

    store = ShardStore(store_dir)
    old_year, new_year = store.years()[:2]
    start = time.perf_counter()
    if mode == "inram":
        result = link_datasets(
            store.read_dataset(old_year),
            store.read_dataset(new_year),
            LinkageConfig(blocking="region"),
        )
    else:
        result = link_datasets_sharded(
            ShardedRecordSource.from_store(store, old_year),
            ShardedRecordSource.from_store(store, new_year),
            LinkageConfig(blocking="region", shards=shards),
        )
    seconds = time.perf_counter() - start
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(json.dumps({
        "mode": mode,
        "seconds": seconds,
        "peak_rss_mb": rss_kb / 1024.0,
        "decision_hash": decision_ledger_hash(result),
        "record_links": result.num_record_links,
        "group_links": result.num_group_links,
    }))
    return 0


def _generate(store_dir: str, households: int, regions: int) -> int:
    """Generate and persist one country pair (subprocess entry point, so
    generation memory never pollutes a variant's RSS)."""
    from repro.datagen.country import CountryConfig, generate_country
    from repro.sharding import ShardStore

    country = generate_country(CountryConfig(
        seed=BENCH_SEED,
        regions=regions,
        households_per_region=households // regions,
    ))
    store = ShardStore(store_dir)
    store.write_datasets(country.datasets)
    print(json.dumps({
        "records": [len(dataset) for dataset in country.datasets],
    }))
    return 0


def _run_child(args) -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), *args],
        capture_output=True, text=True, env=env, check=False,
    )
    if process.returncode != 0:
        raise RuntimeError(
            f"worker {args} failed:\n{process.stdout}\n{process.stderr}"
        )
    return json.loads(process.stdout.strip().splitlines()[-1])


# -- the grid ----------------------------------------------------------------


def run_row(households: int, regions: int, shards: int, keep_manifest=None):
    """One grid row: generate → link both ways → compare."""
    with tempfile.TemporaryDirectory(prefix="bench-sharded-") as tmp:
        store_dir = str(Path(tmp) / "store")
        gen = _run_child([
            "--generate", store_dir, str(households), str(regions)
        ])
        if keep_manifest is not None:
            shutil.copy(Path(store_dir) / "manifest.json", keep_manifest)
        inram = _run_child(["--run-variant", "inram", store_dir, "0"])
        sharded = _run_child([
            "--run-variant", "sharded", store_dir, str(shards)
        ])
    assert sharded["decision_hash"] == inram["decision_hash"], (
        f"sharded decisions diverged from in-RAM at {households} "
        f"households: {sharded['decision_hash']} != {inram['decision_hash']}"
    )
    return {
        "households": households,
        "regions": regions,
        "shards": shards,
        "records": gen["records"],
        "inram_seconds": inram["seconds"],
        "sharded_seconds": sharded["seconds"],
        "inram_peak_rss_mb": inram["peak_rss_mb"],
        "sharded_peak_rss_mb": sharded["peak_rss_mb"],
        "rss_ratio": sharded["peak_rss_mb"] / inram["peak_rss_mb"],
        "decision_hash": inram["decision_hash"],
        "record_links": inram["record_links"],
        "group_links": inram["group_links"],
    }


def format_rows(rows):
    from repro.evaluation.reporting import format_table

    return format_table(
        ("households", "records", "shards", "inram_s", "sharded_s",
         "inram_rss_mb", "sharded_rss_mb", "rss_ratio"),
        [
            (
                row["households"],
                "/".join(str(n) for n in row["records"]),
                row["shards"],
                f"{row['inram_seconds']:.1f}",
                f"{row['sharded_seconds']:.1f}",
                f"{row['inram_peak_rss_mb']:.0f}",
                f"{row['sharded_peak_rss_mb']:.0f}",
                f"{row['rss_ratio']:.2f}",
            )
            for row in rows
        ],
        title=(
            f"Sharded out-of-core vs in-RAM linkage (region blocking, "
            f"seed {BENCH_SEED}; decisions ledger-hash-identical on "
            f"every row)"
        ),
    )


def check_baseline(row) -> None:
    baseline_path = RESULTS_DIR / BASELINE_NAME
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    problems = []
    if row["decision_hash"] != baseline["decision_hash"]:
        problems.append(
            f"decision hash drifted: pinned {baseline['decision_hash']}, "
            f"got {row['decision_hash']}"
        )
    ceiling = baseline["sharded_peak_rss_mb_ceiling"]
    if row["sharded_peak_rss_mb"] > ceiling:
        problems.append(
            f"sharded peak RSS {row['sharded_peak_rss_mb']:.0f} MB "
            f"exceeds the pinned ceiling {ceiling} MB"
        )
    if problems:
        raise AssertionError(
            "sharded quick baseline violated:\n" + "\n".join(problems)
        )
    print(
        f"baseline ok: hash {row['decision_hash'][:16]}… pinned, "
        f"sharded RSS {row['sharded_peak_rss_mb']:.0f} MB <= "
        f"{ceiling} MB ceiling"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: one small row, writes "
                             "results/sharded_quick.{txt,json}")
    parser.add_argument("--check-baseline", action="store_true",
                        help="gate the quick row against the committed "
                             f"results/{BASELINE_NAME}")
    parser.add_argument("--max-households", type=int, default=100_000,
                        help="extend the full grid up to this many "
                             "households (200000 adds the 1000-region row)")
    # Subprocess entry points (internal).
    parser.add_argument("--run-variant", nargs=3,
                        metavar=("MODE", "STORE", "SHARDS"),
                        help=argparse.SUPPRESS)
    parser.add_argument("--generate", nargs=3,
                        metavar=("STORE", "HOUSEHOLDS", "REGIONS"),
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.run_variant:
        mode, store_dir, shards = args.run_variant
        return _worker(mode, store_dir, int(shards))
    if args.generate:
        store_dir, households, regions = args.generate
        return _generate(store_dir, int(households), int(regions))

    if args.quick or args.check_baseline:
        households, regions, shards = QUICK_ROW
        RESULTS_DIR.mkdir(exist_ok=True)
        manifest_copy = RESULTS_DIR / "sharded_quick_manifest.json"
        row = run_row(households, regions, shards,
                      keep_manifest=manifest_copy)
        write_result("sharded_quick.txt", format_rows([row]))
        (RESULTS_DIR / "sharded_quick.json").write_text(
            json.dumps(row, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        if args.check_baseline:
            check_baseline(row)
        print("sharded == in-RAM decisions at "
              f"{households} households")
        return 0

    rows = []
    grid = list(FULL_GRID)
    if args.max_households >= EXTENDED_ROW[0]:
        grid.append(EXTENDED_ROW)
    grid = [row for row in grid if row[0] <= args.max_households]
    for households, regions, shards in grid:
        print(f"[bench_sharded] {households} households "
              f"({regions} regions, {shards} shards)...", flush=True)
        row = run_row(households, regions, shards)
        rows.append(row)
        print(f"[bench_sharded]   in-RAM {row['inram_seconds']:.0f}s/"
              f"{row['inram_peak_rss_mb']:.0f}MB, sharded "
              f"{row['sharded_seconds']:.0f}s/"
              f"{row['sharded_peak_rss_mb']:.0f}MB", flush=True)
    write_result("sharded_full.txt", format_rows(rows))
    (RESULTS_DIR / "sharded_full.json").write_text(
        json.dumps(rows, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    # The acceptance gate: out-of-core must beat in-RAM on resident
    # memory wherever the data is big enough for the claim to matter.
    for row in rows:
        if row["households"] >= 10_000:
            assert row["sharded_peak_rss_mb"] < row["inram_peak_rss_mb"], (
                f"sharded peak RSS ({row['sharded_peak_rss_mb']:.0f} MB) "
                f"not below in-RAM ({row['inram_peak_rss_mb']:.0f} MB) at "
                f"{row['households']} households"
            )
    print("all rows decision-identical; sharded peak RSS below in-RAM "
          "on every row >= 10k households")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
