"""Assemble the nightly baseline-drift report.

Runs at the end of the nightly workflow, after the non-quick benchmark
grids (`bench_scaling`, `bench_scenarios`, `bench_incremental`,
`bench_sharded`, `bench_service`) have refreshed ``results/``.  Reads whatever full-grid
JSON results exist, compares them against the committed quick-mode
baselines where the two are comparable, and writes
``results/nightly_drift.md`` — the artifact a human reads in the
morning to decide whether a drift is noise, a regression, or a baseline
that needs re-recording.

This script never fails the build: the hard gates (ledger-hash
identity, RSS ordering, P/R/F tolerance) live inside the benchmarks
themselves.  The drift report is the soft signal layered on top —
full-grid numbers move for legitimate reasons (different workload
sizes than the quick baselines), so they are reported, not asserted.
"""

import json
from pathlib import Path

from benchlib import RESULTS_DIR

REPORT = RESULTS_DIR / "nightly_drift.md"


def load(name):
    path = RESULTS_DIR / name
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def sharded_section(lines):
    rows = load("sharded_full.json")
    baseline = load("baseline_sharded_quick.json")
    lines.append("## Sharded out-of-core grid (`bench_sharded.py`)\n")
    if rows is None:
        lines.append("_not run this night_\n")
        return
    lines.append(
        "| households | in-RAM s | sharded s | in-RAM MB | sharded MB "
        "| RSS ratio |"
    )
    lines.append("|---|---|---|---|---|---|")
    for row in rows:
        lines.append(
            f"| {row['households']} | {row['inram_seconds']:.0f} "
            f"| {row['sharded_seconds']:.0f} "
            f"| {row['inram_peak_rss_mb']:.0f} "
            f"| {row['sharded_peak_rss_mb']:.0f} "
            f"| {row['rss_ratio']:.2f} |"
        )
    lines.append(
        "\nDecision hashes were asserted sharded == in-RAM on every "
        "row by the benchmark itself; the quick-gate hash pinned in "
        "`baseline_sharded_quick.json` is "
        f"`{(baseline or {}).get('decision_hash', '?')[:16]}…` and only "
        "applies at quick scale.\n"
    )


def scenario_section(lines):
    matrix = load("scenario_matrix.json")
    baseline = load("baseline_scenarios_quick.json")
    lines.append("## Backend × scenario quality (`bench_scenarios.py`)\n")
    if matrix is None or baseline is None:
        lines.append("_not run this night_\n")
        return
    lines.append(
        "Full-grid F-measure vs the committed quick baseline (larger "
        "workload, so drift here is informational):\n"
    )
    lines.append("| cell | quick baseline F | nightly full F | delta |")
    lines.append("|---|---|---|---|")
    for cell in matrix.get("cells", []):
        key = f"{cell['scenario']}/{cell['backend']}"
        pinned = baseline.get(key)
        if pinned is None:
            continue
        delta = cell["f_measure"] - pinned["f_measure"]
        lines.append(
            f"| {key} | {pinned['f_measure']:.2f} "
            f"| {cell['f_measure']:.2f} | {delta:+.2f} |"
        )
    lines.append("")


def incremental_section(lines):
    counters = load("incremental_full.json")
    lines.append("## Incremental arrivals (`bench_incremental.py`)\n")
    if counters is None:
        lines.append("_not run this night_\n")
        return
    lines.append("| arrival | pairs re-scored | pairs reused |")
    lines.append("|---|---|---|")
    for arrival in sorted(counters):
        row = counters[arrival]
        lines.append(
            f"| {arrival} | {row.get('pairs_rescored', '?')} "
            f"| {row.get('series_pairs_reused', '?')} |"
        )
    lines.append(
        "\nThe no-op arrival re-scoring zero pairs is asserted by the "
        "benchmark; anything nonzero above for `no-op` means the gate "
        "itself changed.\n"
    )


def service_section(lines):
    rows = load("service_full.json")
    baseline = load("baseline_service_quick.json")
    lines.append("## Evolution query service load (`bench_service.py`)\n")
    if rows is None:
        lines.append("_not run this night_\n")
        return
    lines.append("| clients | cache | p50 ms | p99 ms | rps | hit rate |")
    lines.append("|---|---|---|---|---|---|")
    for row in rows:
        lines.append(
            f"| {row['clients']} "
            f"| {'on' if row['cache_enabled'] else 'off'} "
            f"| {row['p50_ms']:.2f} | {row['p99_ms']:.2f} "
            f"| {row['rps']:.0f} | {row['cache_hit_rate']:.2f} |"
        )
    if baseline is not None:
        lines.append(
            "\nThe quick-gate ceilings pinned in "
            "`baseline_service_quick.json` are "
            f"p50 <= {baseline['p50_ms_ceiling']} ms / "
            f"p99 <= {baseline['p99_ms_ceiling']} ms at quick scale; "
            "the full rows above run 3x the clients, so drift against "
            "those ceilings is informational.  Cache-on beating "
            "cache-off was asserted by the benchmark itself.\n"
        )
    else:
        lines.append("")


def main():
    lines = ["# Nightly baseline-drift report\n"]
    sharded_section(lines)
    scenario_section(lines)
    incremental_section(lines)
    service_section(lines)
    REPORT.write_text("\n".join(lines) + "\n", encoding="utf-8")
    print(f"wrote {REPORT}")
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
