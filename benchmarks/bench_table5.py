"""Table 5 — iterative vs non-iterative linkage.

Runs in *faithful mode* (direct-pair vertex guard off): the paper's
one-shot run suffers because pre-matching at δ=0.5 merges frequent
names into large transitive clusters, while the iterative schedule
locks safe matches at δ=0.7 first.  Our optional vertex guard removes
that failure mode for both legs (see bench_ablation_guard), so the
contrast is measured without it.

Shape targets from the paper: iterative beats non-iterative on
F-measure for both mappings, with precision driving the gap.
"""

from benchlib import once, write_result

from repro.core.config import LinkageConfig
from repro.evaluation.experiments import format_table5, run_linkage


def run_table5_faithful(workload):
    iterative = LinkageConfig(require_direct_pair_threshold=False)
    return {
        "non-iterative": run_linkage(workload, iterative.non_iterative()),
        "iterative": run_linkage(workload, iterative),
    }


def test_table5_iterative_vs_non_iterative(benchmark, pair_workload):
    results = once(benchmark, run_table5_faithful, pair_workload)
    write_result("table5.txt", format_table5(results))

    iterative = results["iterative"]
    one_shot = results["non-iterative"]
    # Iterative wins on both mappings (paper: +2.2 group / +3.1 record F).
    assert iterative.record.f_measure >= one_shot.record.f_measure - 0.001
    assert iterative.group.f_measure >= one_shot.group.f_measure - 0.001
    # ... and the gain comes from precision (paper: 97.5 vs 91.8).
    assert iterative.record.precision >= one_shot.record.precision - 0.001
