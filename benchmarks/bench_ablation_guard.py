"""Ablation — the direct-pair vertex guard (this reproduction's extension).

The guard requires a subgraph vertex pair to reach the current δ
*directly*, instead of merely sharing a transitively merged cluster
label.  Without it, pre-matching at relaxed thresholds (e.g. every
"John" pairs with every "John" at δ ≤ 0.6) floods subgraph matching
with spurious vertices.

Expected shape: guard ON improves precision substantially at equal or
better recall — and (see bench_table5) it also makes the one-shot
configuration nearly as good as the iterative one, which is why the
Table 4/5 benchmarks disable it to expose the paper's contrasts.
"""

from benchlib import once, write_result

from repro.core.config import LinkageConfig
from repro.evaluation.experiments import run_linkage
from repro.evaluation.reporting import format_table


def run_guard_ablation(workload):
    return {
        "guard on (default)": run_linkage(workload, LinkageConfig()),
        "guard off (faithful)": run_linkage(
            workload, LinkageConfig(require_direct_pair_threshold=False)
        ),
    }


def test_ablation_direct_pair_guard(benchmark, pair_workload):
    results = once(benchmark, run_guard_ablation, pair_workload)
    rows = []
    for label, quality in results.items():
        rp, rr, rf = quality.record.as_percentages()
        gp, gr, gf = quality.group.as_percentages()
        rows.append([label, f"{rp:.1f}", f"{rr:.1f}", f"{rf:.1f}",
                     f"{gp:.1f}", f"{gr:.1f}", f"{gf:.1f}"])
    text = format_table(
        ["configuration", "rec P", "rec R", "rec F", "grp P", "grp R", "grp F"],
        rows,
        title="Ablation: direct-pair vertex guard",
    )
    write_result("ablation_guard.txt", text)

    on = results["guard on (default)"]
    off = results["guard off (faithful)"]
    assert on.record.precision >= off.record.precision - 0.001
    assert on.record.f_measure >= off.record.f_measure - 0.001
