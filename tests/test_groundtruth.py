"""Tests for the series ground truth bookkeeping."""

import pytest

from repro.model.mappings import GroupMapping, RecordMapping


class TestTrueMappings:
    def test_record_mapping_is_one_to_one(self, small_series):
        truth = small_series.ground_truth.record_mapping(1851, 1861)
        pairs = truth.pairs()
        assert len({o for o, _ in pairs}) == len(pairs)
        assert len({n for _, n in pairs}) == len(pairs)

    def test_linked_records_share_entity(self, small_series):
        ground_truth = small_series.ground_truth
        truth = ground_truth.record_mapping(1851, 1861)
        for old_id, new_id in truth:
            assert (
                ground_truth.record_to_entity[1851][old_id]
                == ground_truth.record_to_entity[1861][new_id]
            )

    def test_group_mapping_from_shared_members(self, small_series):
        ground_truth = small_series.ground_truth
        record_truth = ground_truth.record_mapping(1851, 1861)
        group_truth = ground_truth.group_mapping(1851, 1861)
        derived = {
            (
                ground_truth.record_household[1851][o],
                ground_truth.record_household[1861][n],
            )
            for o, n in record_truth
        }
        assert set(group_truth.pairs()) == derived

    def test_non_adjacent_years_supported(self, small_series):
        truth = small_series.ground_truth.record_mapping(1851, 1871)
        assert len(truth) > 0

    def test_years_property(self, small_series):
        assert small_series.ground_truth.years == [1851, 1861, 1871]


class TestReferenceSubset:
    def test_subset_households_have_strong_links(self, small_series):
        ground_truth = small_series.ground_truth
        subset = ground_truth.reference_household_subset(1851, 1861)
        record_truth = ground_truth.record_mapping(1851, 1861)
        overlap = {}
        for old_id, new_id in record_truth:
            pair = (
                ground_truth.record_household[1851][old_id],
                ground_truth.record_household[1861][new_id],
            )
            overlap[pair] = overlap.get(pair, 0) + 1
        for household in subset:
            strong = [
                pair for pair, count in overlap.items()
                if pair[0] == household and count >= 2
            ]
            assert strong

    def test_max_households_respected(self, small_series):
        ground_truth = small_series.ground_truth
        subset = ground_truth.reference_household_subset(
            1851, 1861, max_households=5
        )
        assert len(subset) == 5

    def test_sampling_deterministic(self, small_series):
        ground_truth = small_series.ground_truth
        first = ground_truth.reference_household_subset(1851, 1861, 5, seed=3)
        second = ground_truth.reference_household_subset(1851, 1861, 5, seed=3)
        assert first == second

    def test_restrict_record_mapping(self, small_series):
        ground_truth = small_series.ground_truth
        truth = ground_truth.record_mapping(1851, 1861)
        subset = ground_truth.reference_household_subset(1851, 1861, 5)
        restricted = ground_truth.restrict_record_mapping(truth, 1851, subset)
        for old_id, _ in restricted:
            assert ground_truth.record_household[1851][old_id] in subset
        assert len(restricted) <= len(truth)

    def test_restrict_group_mapping(self, small_series):
        ground_truth = small_series.ground_truth
        groups = ground_truth.group_mapping(1851, 1861)
        subset = ground_truth.reference_household_subset(1851, 1861, 5)
        restricted = ground_truth.restrict_group_mapping(groups, subset)
        assert all(old in subset for old, _ in restricted)
