"""Tests for quality metrics, reporting and experiment runners."""

import pytest

from repro.evaluation.metrics import (
    QualityResult,
    evaluate_mapping,
    evaluate_restricted,
)
from repro.evaluation.reporting import format_table, quality_block, quality_row
from repro.model.mappings import GroupMapping, RecordMapping


class TestQualityResult:
    def test_perfect(self):
        result = QualityResult(10, 0, 0)
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.f_measure == 1.0

    def test_mixed(self):
        result = QualityResult(8, 2, 2)
        assert result.precision == pytest.approx(0.8)
        assert result.recall == pytest.approx(0.8)
        assert result.f_measure == pytest.approx(0.8)

    def test_zero_predictions(self):
        result = QualityResult(0, 0, 5)
        assert result.precision == 0.0
        assert result.recall == 0.0
        assert result.f_measure == 0.0

    def test_percentages(self):
        precision, recall, f_measure = QualityResult(1, 1, 3).as_percentages()
        assert precision == pytest.approx(50.0)
        assert recall == pytest.approx(25.0)

    def test_str(self):
        text = str(QualityResult(1, 1, 1))
        assert "P=50.0%" in text


class TestEvaluateMapping:
    def test_record_mapping(self):
        predicted = RecordMapping([("o1", "n1"), ("o2", "n9")])
        reference = RecordMapping([("o1", "n1"), ("o3", "n3")])
        result = evaluate_mapping(predicted, reference)
        assert result.true_positives == 1
        assert result.false_positives == 1
        assert result.false_negatives == 1

    def test_group_mapping(self):
        predicted = GroupMapping([("g1", "h1")])
        reference = GroupMapping([("g1", "h1"), ("g2", "h2")])
        result = evaluate_mapping(predicted, reference)
        assert result.recall == pytest.approx(0.5)
        assert result.precision == 1.0

    def test_empty_mappings(self):
        result = evaluate_mapping(RecordMapping(), RecordMapping())
        assert result.f_measure == 0.0


class TestEvaluateRestricted:
    def test_scope_filters_both_sides(self):
        predicted = RecordMapping([("o1", "n1"), ("o2", "n9")])
        reference = RecordMapping([("o1", "n1"), ("o2", "n2"), ("o3", "n3")])
        result = evaluate_restricted(predicted, reference, {"o1", "o2"})
        assert result.true_positives == 1
        assert result.false_positives == 1
        assert result.false_negatives == 1  # o3 out of scope

    def test_none_scope_equals_plain(self):
        predicted = RecordMapping([("o1", "n1")])
        reference = RecordMapping([("o1", "n1")])
        assert (
            evaluate_restricted(predicted, reference, None).f_measure
            == evaluate_mapping(predicted, reference).f_measure
        )


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_format_table_with_title(self):
        text = format_table(["x"], [["1"]], title="My Table")
        assert text.startswith("My Table")

    def test_quality_row(self):
        row = quality_row("method", QualityResult(1, 1, 1))
        assert row == ["method", "50.0", "50.0", "50.0"]

    def test_quality_block(self):
        block = quality_block({"m1": QualityResult(1, 0, 0)}, "record")
        assert "record" in block
        assert "100.0" in block


class TestExperimentRunners:
    def test_table1_runner(self):
        from repro.evaluation.experiments import format_table1, run_table1

        stats = run_table1(seed=4, initial_households=30)
        assert len(stats) == 6
        assert stats[0].year == 1851
        text = format_table1(stats)
        assert "1901" in text and "ratio_mv" in text

    def test_workload_and_table5(self):
        from repro.evaluation.experiments import (
            ExperimentWorkload,
            format_table5,
            run_table5,
        )

        workload = ExperimentWorkload.default(seed=8, initial_households=40)
        results = run_table5(workload)
        assert set(results) == {"iterative", "non-iterative"}
        text = format_table5(results)
        assert "iterative" in text

    def test_reference_scope_mode(self):
        from repro.core.config import LinkageConfig
        from repro.evaluation.experiments import ExperimentWorkload, run_linkage

        workload = ExperimentWorkload.default(
            seed=8, initial_households=40, reference_scope=True
        )
        quality = run_linkage(workload, LinkageConfig())
        assert 0.0 <= quality.record.f_measure <= 1.0

    def test_table6_and_7_runners(self):
        from repro.evaluation.experiments import (
            ExperimentWorkload,
            format_table6,
            format_table7,
            run_table6,
            run_table7,
        )

        workload = ExperimentWorkload.default(seed=8, initial_households=40)
        table6 = run_table6(workload)
        assert set(table6) == {"CL", "iter-sub"}
        assert "CL" in format_table6(table6)
        table7 = run_table7(workload)
        assert set(table7) == {"GraphSim", "iter-sub"}
        assert "GraphSim" in format_table7(table7)

    def test_evolution_runners(self):
        from repro.evaluation.experiments import (
            format_figure6,
            format_table8,
            run_evolution_analysis,
            run_figure6,
            run_table8,
        )

        analysis = run_evolution_analysis(seed=4, initial_households=30)
        figure6 = run_figure6(analysis)
        assert len(figure6) == 5
        assert "preserve_G" in format_figure6(figure6)
        table8 = run_table8(analysis)
        assert set(table8) <= {10, 20, 30, 40, 50}
        assert "interval" in format_table8(table8)
