"""Unit tests for LinkageConfig (Table 2 weights, Alg. 1 parameters)."""

import pytest

from repro.blocking.standard import CrossProductBlocker, StandardBlocker
from repro.core.config import OMEGA1, OMEGA2, LinkageConfig


class TestTable2Weights:
    def test_omega1_equal_weights(self):
        weights = [weight for _, _, weight in OMEGA1]
        assert weights == [0.2] * 5

    def test_omega2_weights(self):
        as_dict = {attr: weight for attr, _, weight in OMEGA2}
        assert as_dict == {
            "first_name": 0.4,
            "sex": 0.2,
            "surname": 0.2,
            "address": 0.1,
            "occupation": 0.1,
        }

    def test_matching_methods(self):
        for spec in (OMEGA1, OMEGA2):
            methods = {attr: method for attr, method, _ in spec}
            assert methods["sex"] == "exact"
            for attr in ("first_name", "surname", "address", "occupation"):
                assert methods[attr] == "qgram"


class TestThresholdSchedule:
    def test_paper_default_schedule(self):
        schedule = LinkageConfig().threshold_schedule()
        assert schedule == (0.7, 0.65, 0.6, 0.55, 0.5)

    def test_single_round_when_bounds_equal(self):
        config = LinkageConfig(delta_high=0.5, delta_low=0.5)
        assert config.threshold_schedule() == (0.5,)

    def test_non_iterative_helper(self):
        config = LinkageConfig().non_iterative()
        assert config.threshold_schedule() == (0.5,)
        assert config.delta_high == config.delta_low == 0.5

    def test_max_iterations_caps_schedule(self):
        config = LinkageConfig(
            delta_high=0.9, delta_low=0.1, delta_step=0.01, max_iterations=5
        )
        assert len(config.threshold_schedule()) == 5

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            LinkageConfig(delta_high=0.4, delta_low=0.5)
        with pytest.raises(ValueError):
            LinkageConfig(delta_step=0.0)


class TestBuilders:
    def test_build_sim_func_defaults_to_delta_high(self):
        func = LinkageConfig().build_sim_func()
        assert func.threshold == 0.7
        assert func.attributes == (
            "first_name",
            "sex",
            "surname",
            "address",
            "occupation",
        )

    def test_build_sim_func_with_threshold(self):
        assert LinkageConfig().build_sim_func(0.55).threshold == 0.55

    def test_build_remaining_sim_func(self):
        config = LinkageConfig(remaining_threshold=0.8)
        assert config.build_remaining_sim_func().threshold == 0.8

    def test_remaining_weights_override(self):
        config = LinkageConfig(
            remaining_weights=(("first_name", "qgram", 1.0),),
            remaining_threshold=0.9,
        )
        func = config.build_remaining_sim_func()
        assert func.attributes == ("first_name",)

    def test_build_blocker_variants(self):
        assert isinstance(LinkageConfig().build_blocker(), StandardBlocker)
        assert isinstance(
            LinkageConfig(blocking="cross").build_blocker(), CrossProductBlocker
        )
        custom = CrossProductBlocker()
        assert LinkageConfig(blocking=custom).build_blocker() is custom
        with pytest.raises(ValueError):
            LinkageConfig(blocking="magic").build_blocker()

    def test_year_gap_validation(self):
        with pytest.raises(ValueError):
            LinkageConfig(year_gap=0)
