"""Tests for the demographic reporting utilities."""

import pytest

import repro.model.roles as R
from repro.evaluation.demography import (
    age_pyramid,
    demography_report,
    dependency_ratio,
    household_size_distribution,
    mean_household_size,
    role_composition,
    series_growth_table,
    sex_ratio,
    surname_concentration,
)
from repro.model.dataset import CensusDataset
from repro.model.records import PersonRecord


def record(record_id, household, sex="m", age=30, surname="kay",
           role=R.HEAD):
    return PersonRecord(record_id, household, "john", surname, sex, age,
                        role=role)


@pytest.fixture
def dataset():
    return CensusDataset.from_records(
        1871,
        [
            record("r1", "g1", "m", 40),
            record("r2", "g1", "f", 38, role=R.WIFE),
            record("r3", "g1", "m", 8, role=R.SON),
            record("r4", "g2", "f", 70, surname="holt"),
            record("r5", "g2", "m", None, surname="holt", role=R.LODGER),
        ],
    )


class TestAgePyramid:
    def test_band_counts(self, dataset):
        bands = age_pyramid(dataset)
        assert bands[0].males == 1  # the 8-year-old
        assert bands[4].males == 1 and bands[4].label == "40-49"
        assert bands[3].females == 1
        assert bands[7].females == 1

    def test_missing_age_excluded(self, dataset):
        bands = age_pyramid(dataset)
        assert sum(band.total for band in bands) == 4

    def test_overflow_band(self):
        old = CensusDataset.from_records(
            1871, [record("r1", "g1", "m", 101)]
        )
        bands = age_pyramid(old)
        assert bands[-1].total == 1
        assert bands[-1].lower == 90

    def test_band_width_validation(self, dataset):
        with pytest.raises(ValueError):
            age_pyramid(dataset, band_width=0)


class TestDistributions:
    def test_household_sizes(self, dataset):
        assert household_size_distribution(dataset) == {3: 1, 2: 1}
        assert mean_household_size(dataset) == pytest.approx(2.5)

    def test_mean_size_empty(self):
        assert mean_household_size(CensusDataset(1871)) == 0.0

    def test_surname_concentration(self, dataset):
        top = surname_concentration(dataset, top=2)
        assert top[0][0] == "kay"
        assert top[0][1] == 3
        assert top[0][2] == pytest.approx(0.6)

    def test_role_composition(self, dataset):
        roles = role_composition(dataset)
        assert roles[R.HEAD] == 2
        assert roles[R.WIFE] == 1

    def test_sex_ratio(self, dataset):
        assert sex_ratio(dataset) == pytest.approx(150.0)

    def test_dependency_ratio(self, dataset):
        # young: 8yo; old: 70yo; working: 40 + 38.
        assert dependency_ratio(dataset) == pytest.approx(1.0)


class TestReports:
    def test_demography_report_sections(self, dataset):
        text = demography_report(dataset)
        assert "Age pyramid" in text
        assert "Household sizes" in text
        assert "kay" in text
        assert "sex ratio" in text

    def test_series_growth_table(self, small_series):
        text = series_growth_table(small_series.datasets)
        assert "1851" in text and "1871" in text
        assert "+" in text  # the town grows

    def test_on_generated_data(self, small_series):
        dataset = small_series.datasets[0]
        bands = age_pyramid(dataset)
        assert sum(band.total for band in bands) > 0
        assert 1.5 < mean_household_size(dataset) < 8.0
        assert 60 < sex_ratio(dataset) < 160
