"""Property-based tests (hypothesis) for core invariants.

All strategies are shared with the rest of the suite via
``tests/strategies.py``; pipeline-level properties validate every
generated linkage result against the full invariant registry of
:mod:`repro.validation.invariants`.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphutil.union_find import UnionFind
from repro.model.mappings import GroupMapping, RecordMapping
from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity
from repro.similarity.levenshtein import (
    levenshtein_distance,
    levenshtein_similarity,
)
from repro.similarity.numeric import (
    absolute_difference_similarity,
    temporal_age_similarity,
)
from repro.similarity.phonetic import nysiis, soundex
from repro.similarity.qgram import qgram_similarity, qgrams

from tests.strategies import (
    census_dataset_pairs,
    census_datasets,
    households_st,
    names,
    person_records,
    record_pairs,
    words,
)


class TestStringSimilarityProperties:
    @given(names, names)
    def test_qgram_bounds_and_symmetry(self, left, right):
        value = qgram_similarity(left, right)
        assert 0.0 <= value <= 1.0
        assert value == qgram_similarity(right, left)

    @given(names)
    def test_qgram_identity(self, text):
        assert qgram_similarity(text, text) == 1.0

    @given(names, st.integers(min_value=1, max_value=4))
    def test_qgram_count(self, text, q):
        grams = qgrams(text, q=q, padded=False)
        normalised = " ".join(text.lower().split())
        if normalised:
            assert len(grams) == max(1, len(normalised) - q + 1)
        else:
            assert grams == []

    @given(names, names)
    def test_levenshtein_symmetry_and_bounds(self, left, right):
        distance = levenshtein_distance(left, right)
        assert distance == levenshtein_distance(right, left)
        assert distance <= max(len(left), len(right))
        assert 0.0 <= levenshtein_similarity(left, right) <= 1.0

    @given(names, names, names)
    def test_levenshtein_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )

    @given(names, names)
    def test_jaro_bounds_and_symmetry(self, left, right):
        value = jaro_similarity(left, right)
        assert 0.0 <= value <= 1.0
        assert value == jaro_similarity(right, left)
        assert jaro_winkler_similarity(left, right) >= value - 1e-12

    @given(words)
    def test_soundex_format(self, word):
        code = soundex(word)
        assert len(code) == 4
        assert code[0] == word[0].upper()
        assert all(c.isdigit() for c in code[1:] if c != "0")

    @given(words)
    def test_nysiis_deterministic_and_bounded(self, word):
        code = nysiis(word)
        assert code == nysiis(word)
        assert len(code) <= 8


class TestNumericProperties:
    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
        st.floats(min_value=0.5, max_value=20),
    )
    def test_absolute_difference_bounds(self, left, right, scale):
        value = absolute_difference_similarity(left, right, scale)
        assert 0.0 <= value <= 1.0
        assert value == absolute_difference_similarity(right, left, scale)

    @given(st.integers(min_value=0, max_value=90))
    def test_temporal_age_exact_gap_is_one(self, age):
        assert temporal_age_similarity(age, age + 10, 10) == 1.0


class TestUnionFindProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=60,
        )
    )
    def test_groups_partition_items(self, edges):
        union_find = UnionFind(range(31))
        for left, right in edges:
            union_find.union(left, right)
        groups = union_find.groups()
        flattened = [item for group in groups for item in group]
        assert sorted(flattened) == list(range(31))

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=40,
        )
    )
    def test_connectivity_reflects_edges(self, edges):
        union_find = UnionFind(range(21))
        for left, right in edges:
            union_find.union(left, right)
        for left, right in edges:
            assert union_find.connected(left, right)


class TestMappingProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=50),
            ),
            max_size=80,
        )
    )
    def test_record_mapping_stays_one_to_one(self, raw_pairs):
        mapping = RecordMapping()
        for old, new in raw_pairs:
            mapping.try_add(f"o{old}", f"n{new}")
        pairs = mapping.pairs()
        assert len({o for o, _ in pairs}) == len(pairs)
        assert len({n for _, n in pairs}) == len(pairs)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=60,
        )
    )
    def test_group_mapping_partner_consistency(self, raw_pairs):
        mapping = GroupMapping(
            (f"g{old}", f"h{new}") for old, new in raw_pairs
        )
        for old, new in mapping:
            assert new in mapping.partners_of_old(old)
            assert old in mapping.partners_of_new(new)
        assert len(mapping) == len(set(mapping.pairs()))


class TestSimilarityFunctionProperties:
    @given(record_pairs())
    @settings(max_examples=60)
    def test_agg_sim_bounds(self, pair):
        from repro.core.config import LinkageConfig

        func = LinkageConfig().build_sim_func()
        left, right = pair
        value = func.agg_sim(left, right)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(record_pairs())
    @settings(max_examples=60)
    def test_agg_sim_symmetric(self, pair):
        from repro.core.config import LinkageConfig

        func = LinkageConfig().build_sim_func()
        left, right = pair
        assert func.agg_sim(left, right) == func.agg_sim(right, left)

    @given(record_pairs())
    @settings(max_examples=60)
    def test_identity_scores_maximal(self, pair):
        from repro.core.config import LinkageConfig

        func = LinkageConfig().build_sim_func()
        left, _ = pair
        # Occupation/address may be missing on both sides; the
        # MISSING_ZERO policy then caps the self-similarity at the sum
        # of the present weights (>= 0.8 under ω2).
        assert func.agg_sim(left, left) >= 0.8 - 1e-12


class TestStructuralStrategies:
    """The shared strategies only ever produce valid model objects."""

    @given(person_records())
    @settings(max_examples=40)
    def test_person_records_valid(self, record):
        assert record.record_id and record.household_id
        assert record.sex in ("m", "f")
        assert 0 <= record.age <= 90

    @given(households_st())
    @settings(max_examples=30)
    def test_households_share_surname_and_id(self, members):
        assert members, "a household has at least a head"
        surnames_seen = {member.surname for member in members}
        households_seen = {member.household_id for member in members}
        ids = [member.record_id for member in members]
        assert len(surnames_seen) == 1
        assert len(households_seen) == 1
        assert len(set(ids)) == len(ids)

    @given(census_datasets())
    @settings(max_examples=20)
    def test_census_datasets_unique_ids(self, dataset):
        ids = [record.record_id for record in dataset.iter_records()]
        assert len(set(ids)) == len(ids)
        assert len(dataset) == len(ids)


class TestPipelineProperties:
    """Every linkage output passes the full invariant registry."""

    @given(census_dataset_pairs(min_households=5, max_households=10))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_link_datasets_always_validates(self, pair):
        from repro.core.config import LinkageConfig
        from repro.core.pipeline import link_datasets
        from repro.validation.invariants import validate_result

        old_dataset, new_dataset, _ = pair
        config = LinkageConfig(validate=True)
        # Inline validation must not raise on any generated town ...
        result = link_datasets(old_dataset, new_dataset, config)
        # ... and the standalone pass over the registry agrees.
        report = validate_result(result, old_dataset, new_dataset, config)
        assert report.ok, report.summary()
        assert "link-scores-reach-threshold" in report.checked

    @given(census_dataset_pairs(min_households=4, max_households=8))
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_validation_never_changes_the_result(self, pair):
        from repro.core.config import LinkageConfig
        from repro.core.pipeline import link_datasets

        old_dataset, new_dataset, _ = pair
        plain = link_datasets(old_dataset, new_dataset, LinkageConfig())
        checked = link_datasets(
            old_dataset, new_dataset, LinkageConfig(validate=True)
        )
        assert checked.record_mapping.pairs() == plain.record_mapping.pairs()
        assert checked.group_mapping.pairs() == plain.group_mapping.pairs()
        # Identical instrumentation apart from the validation tallies.
        plain_counters = dict(plain.profile.counters)
        checked_counters = dict(checked.profile.counters)
        checked_counters.pop("invariant_checks", None)
        assert checked_counters == plain_counters

    @given(census_dataset_pairs(min_households=4, max_households=10))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_filtering_is_lossless_on_generated_towns(self, pair):
        """Tentpole property: linking any generated town pair with the
        pruning engine on and off yields pair-identical record and group
        mappings — while the engine actually avoids full evaluations."""
        from repro.core.config import LinkageConfig
        from repro.core.pipeline import link_datasets
        from repro.instrumentation import FULL_AGG_SIM_CALLS

        old_dataset, new_dataset, _ = pair
        filtered = link_datasets(
            old_dataset, new_dataset, LinkageConfig(filtering=True)
        )
        plain = link_datasets(
            old_dataset, new_dataset, LinkageConfig(filtering=False)
        )
        assert sorted(filtered.record_mapping.pairs()) == \
            sorted(plain.record_mapping.pairs())
        assert sorted(filtered.group_mapping.pairs()) == \
            sorted(plain.group_mapping.pairs())
        assert filtered.profile.value(FULL_AGG_SIM_CALLS) <= \
            plain.profile.value(FULL_AGG_SIM_CALLS)
