"""Property-based tests (hypothesis) for core invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.model.roles as R
from repro.graphutil.union_find import UnionFind
from repro.model.mappings import GroupMapping, RecordMapping
from repro.model.records import PersonRecord
from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity
from repro.similarity.levenshtein import (
    levenshtein_distance,
    levenshtein_similarity,
)
from repro.similarity.numeric import (
    absolute_difference_similarity,
    temporal_age_similarity,
)
from repro.similarity.phonetic import nysiis, soundex
from repro.similarity.qgram import qgram_similarity, qgrams

names = st.text(alphabet=string.ascii_lowercase + " ", min_size=0, max_size=24)
words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=16)


class TestStringSimilarityProperties:
    @given(names, names)
    def test_qgram_bounds_and_symmetry(self, left, right):
        value = qgram_similarity(left, right)
        assert 0.0 <= value <= 1.0
        assert value == qgram_similarity(right, left)

    @given(names)
    def test_qgram_identity(self, text):
        assert qgram_similarity(text, text) == 1.0

    @given(names, st.integers(min_value=1, max_value=4))
    def test_qgram_count(self, text, q):
        grams = qgrams(text, q=q, padded=False)
        normalised = " ".join(text.lower().split())
        if normalised:
            assert len(grams) == max(1, len(normalised) - q + 1)
        else:
            assert grams == []

    @given(names, names)
    def test_levenshtein_symmetry_and_bounds(self, left, right):
        distance = levenshtein_distance(left, right)
        assert distance == levenshtein_distance(right, left)
        assert distance <= max(len(left), len(right))
        assert 0.0 <= levenshtein_similarity(left, right) <= 1.0

    @given(names, names, names)
    def test_levenshtein_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )

    @given(names, names)
    def test_jaro_bounds_and_symmetry(self, left, right):
        value = jaro_similarity(left, right)
        assert 0.0 <= value <= 1.0
        assert value == jaro_similarity(right, left)
        assert jaro_winkler_similarity(left, right) >= value - 1e-12

    @given(words)
    def test_soundex_format(self, word):
        code = soundex(word)
        assert len(code) == 4
        assert code[0] == word[0].upper()
        assert all(c.isdigit() for c in code[1:] if c != "0")

    @given(words)
    def test_nysiis_deterministic_and_bounded(self, word):
        code = nysiis(word)
        assert code == nysiis(word)
        assert len(code) <= 8


class TestNumericProperties:
    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
        st.floats(min_value=0.5, max_value=20),
    )
    def test_absolute_difference_bounds(self, left, right, scale):
        value = absolute_difference_similarity(left, right, scale)
        assert 0.0 <= value <= 1.0
        assert value == absolute_difference_similarity(right, left, scale)

    @given(st.integers(min_value=0, max_value=90))
    def test_temporal_age_exact_gap_is_one(self, age):
        assert temporal_age_similarity(age, age + 10, 10) == 1.0


class TestUnionFindProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=60,
        )
    )
    def test_groups_partition_items(self, edges):
        union_find = UnionFind(range(31))
        for left, right in edges:
            union_find.union(left, right)
        groups = union_find.groups()
        flattened = [item for group in groups for item in group]
        assert sorted(flattened) == list(range(31))

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=40,
        )
    )
    def test_connectivity_reflects_edges(self, edges):
        union_find = UnionFind(range(21))
        for left, right in edges:
            union_find.union(left, right)
        for left, right in edges:
            assert union_find.connected(left, right)


class TestMappingProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=50),
            ),
            max_size=80,
        )
    )
    def test_record_mapping_stays_one_to_one(self, raw_pairs):
        mapping = RecordMapping()
        for old, new in raw_pairs:
            mapping.try_add(f"o{old}", f"n{new}")
        pairs = mapping.pairs()
        assert len({o for o, _ in pairs}) == len(pairs)
        assert len({n for _, n in pairs}) == len(pairs)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=60,
        )
    )
    def test_group_mapping_partner_consistency(self, raw_pairs):
        mapping = GroupMapping(
            (f"g{old}", f"h{new}") for old, new in raw_pairs
        )
        for old, new in mapping:
            assert new in mapping.partners_of_old(old)
            assert old in mapping.partners_of_new(new)
        assert len(mapping) == len(set(mapping.pairs()))


@st.composite
def record_pairs(draw):
    """Two records with overlapping attribute pools."""
    pool = ["john", "mary", "william", "sarah", "thomas"]
    surnames = ["ashworth", "smith", "holt", "kay"]

    def one(record_id):
        return PersonRecord(
            record_id,
            "h1",
            draw(st.sampled_from(pool)),
            draw(st.sampled_from(surnames)),
            draw(st.sampled_from(["m", "f"])),
            draw(st.integers(min_value=0, max_value=90)),
            role=R.HEAD,
        )

    return one("r1"), one("r2")


class TestSimilarityFunctionProperties:
    @given(record_pairs())
    @settings(max_examples=60)
    def test_agg_sim_bounds(self, pair):
        from repro.core.config import LinkageConfig

        func = LinkageConfig().build_sim_func()
        left, right = pair
        value = func.agg_sim(left, right)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(record_pairs())
    @settings(max_examples=60)
    def test_agg_sim_symmetric(self, pair):
        from repro.core.config import LinkageConfig

        func = LinkageConfig().build_sim_func()
        left, right = pair
        assert func.agg_sim(left, right) == func.agg_sim(right, left)

    @given(record_pairs())
    @settings(max_examples=60)
    def test_identity_scores_maximal(self, pair):
        from repro.core.config import LinkageConfig

        func = LinkageConfig().build_sim_func()
        left, _ = pair
        # Occupation/address are missing on both sides; the MISSING_ZERO
        # policy caps the self-similarity at the sum of present weights.
        assert func.agg_sim(left, left) >= 0.8 - 1e-12
