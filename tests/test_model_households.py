"""Unit tests for households and relationships."""

import pytest

import repro.model.roles as R
from repro.model.households import Household, Relationship, edge_key
from repro.model.records import PersonRecord


def member(record_id, role=R.HEAD, age=30, household_id="h1"):
    return PersonRecord(
        record_id, household_id, "john", "smith", "m", age, role=role
    )


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key("b", "a") == ("a", "b")
        assert edge_key("a", "b") == ("a", "b")

    def test_rejects_self_edge(self):
        with pytest.raises(ValueError):
            edge_key("a", "a")


class TestRelationship:
    def test_make_canonicalises(self):
        rel = Relationship.make("r2", "r1", R.SPOUSE, 3)
        assert rel.key == ("r1", "r2")
        assert rel.age_diff == 3

    def test_non_canonical_construction_rejected(self):
        with pytest.raises(ValueError):
            Relationship("r2", "r1", R.SPOUSE)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            Relationship.make("r1", "r2", "frenemy")

    def test_negative_age_diff_rejected(self):
        with pytest.raises(ValueError):
            Relationship.make("r1", "r2", R.SPOUSE, -1)

    def test_none_age_diff_allowed(self):
        assert Relationship.make("r1", "r2", R.SPOUSE, None).age_diff is None

    def test_other_endpoint(self):
        rel = Relationship.make("r1", "r2", R.SPOUSE)
        assert rel.other("r1") == "r2"
        assert rel.other("r2") == "r1"
        with pytest.raises(KeyError):
            rel.other("r3")


class TestHousehold:
    def test_from_members(self):
        household = Household.from_members("h1", [member("r1"), member("r2", R.WIFE)])
        assert household.size == 2
        assert household.member_ids == ["r1", "r2"]

    def test_wrong_household_id_rejected(self):
        with pytest.raises(ValueError):
            Household.from_members("h1", [member("r1", household_id="h2")])

    def test_duplicate_member_rejected(self):
        household = Household.from_members("h1", [member("r1")])
        with pytest.raises(ValueError):
            household.add_member(member("r1"))

    def test_add_relationship_requires_members(self):
        household = Household.from_members("h1", [member("r1")])
        with pytest.raises(KeyError):
            household.add_relationship(Relationship.make("r1", "r9", R.SPOUSE))

    def test_relationship_roundtrip(self):
        household = Household.from_members(
            "h1", [member("r1"), member("r2", R.WIFE)]
        )
        household.add_relationship(Relationship.make("r1", "r2", R.SPOUSE, 2))
        assert household.are_connected("r2", "r1")
        rel = household.get_relationship("r1", "r2")
        assert rel is not None and rel.rel_type == R.SPOUSE

    def test_get_missing_relationship(self):
        household = Household.from_members(
            "h1", [member("r1"), member("r2", R.WIFE)]
        )
        assert household.get_relationship("r1", "r2") is None
        assert not household.are_connected("r1", "r2")

    def test_head_lookup(self):
        household = Household.from_members(
            "h1", [member("r1", R.WIFE), member("r2", R.HEAD)]
        )
        head = household.head()
        assert head is not None and head.record_id == "r2"

    def test_head_missing(self):
        household = Household.from_members("h1", [member("r1", R.LODGER)])
        assert household.head() is None

    def test_neighbours(self):
        household = Household.from_members(
            "h1",
            [member("r1"), member("r2", R.WIFE), member("r3", R.SON, age=5)],
        )
        household.add_relationship(Relationship.make("r1", "r2", R.SPOUSE))
        household.add_relationship(Relationship.make("r1", "r3", R.PARENT_CHILD))
        assert household.neighbours("r1") == ["r2", "r3"]
        assert household.neighbours("r3") == ["r1"]
        with pytest.raises(KeyError):
            household.neighbours("r9")

    def test_is_complete_graph(self):
        household = Household.from_members(
            "h1",
            [member("r1"), member("r2", R.WIFE), member("r3", R.SON, age=5)],
        )
        assert not household.is_complete_graph()
        household.add_relationship(Relationship.make("r1", "r2", R.SPOUSE))
        household.add_relationship(Relationship.make("r1", "r3", R.PARENT_CHILD))
        household.add_relationship(Relationship.make("r2", "r3", R.PARENT_CHILD))
        assert household.is_complete_graph()

    def test_singleton_is_trivially_complete(self):
        assert Household.from_members("h1", [member("r1")]).is_complete_graph()

    def test_copy_shell_drops_relationships(self):
        household = Household.from_members(
            "h1", [member("r1"), member("r2", R.WIFE)]
        )
        household.add_relationship(Relationship.make("r1", "r2", R.SPOUSE))
        shell = household.copy_shell()
        assert shell.size == 2
        assert shell.num_relationships == 0
        assert household.num_relationships == 1

    def test_contains_and_len(self):
        household = Household.from_members("h1", [member("r1")])
        assert "r1" in household
        assert "r2" not in household
        assert len(household) == 1

    def test_iter_records_deterministic(self):
        household = Household.from_members(
            "h1", [member("r2", R.WIFE), member("r1")]
        )
        assert [record.record_id for record in household.iter_records()] == [
            "r1",
            "r2",
        ]
