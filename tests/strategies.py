"""Shared hypothesis strategies for records, households and datasets.

Every property-based test draws from the same vocabulary:

* low-level text/number strategies (``names``, ``words``) for the
  similarity-function properties;
* structural strategies (:func:`person_records`, :func:`households_st`,
  :func:`census_datasets`) that always produce *valid* model objects —
  respecting role vocabulary, age plausibility and id uniqueness;
* :func:`census_dataset_pairs` for pipeline-level properties: two
  successive snapshots with full ground truth, driven through the
  deterministic synthetic generator by a drawn seed, so every example is
  a structurally coherent town rather than random noise.
"""

import string

from hypothesis import strategies as st

import repro.model.roles as R
from repro.datagen import generate_pair
from repro.model.dataset import CensusDataset
from repro.model.records import PersonRecord

# -- text pools --------------------------------------------------------------

names = st.text(alphabet=string.ascii_lowercase + " ", min_size=0, max_size=24)
words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=16)

FIRST_NAMES = ("john", "mary", "william", "sarah", "thomas", "elizabeth")
SURNAMES = ("ashworth", "smith", "holt", "kay", "riley")
OCCUPATIONS = (None, "weaver", "miner", "farmer")
STREETS = (None, "bacup rd", "york st", "mill ln")

first_names = st.sampled_from(FIRST_NAMES)
surnames = st.sampled_from(SURNAMES)
sexes = st.sampled_from(("m", "f"))
ages = st.integers(min_value=0, max_value=90)

#: Roles that need no structural counterpart to be plausible.
MEMBER_ROLES = (R.SON, R.DAUGHTER, R.LODGER, R.SERVANT, R.FATHER_IN_LAW)


@st.composite
def person_records(draw, record_id=None, household_id=None, role=None):
    """A single valid :class:`PersonRecord` with overlapping name pools.

    ``record_id``/``household_id``/``role`` may be fixed by the caller
    (e.g. when composing households); otherwise small ids are drawn.
    """
    if record_id is None:
        record_id = f"r{draw(st.integers(min_value=0, max_value=9999))}"
    if household_id is None:
        household_id = f"h{draw(st.integers(min_value=0, max_value=99))}"
    if role is None:
        role = draw(st.sampled_from((R.HEAD,) + MEMBER_ROLES))
    return PersonRecord(
        record_id=record_id,
        household_id=household_id,
        first_name=draw(first_names),
        surname=draw(surnames),
        sex=draw(sexes),
        age=draw(ages),
        occupation=draw(st.sampled_from(OCCUPATIONS)),
        address=draw(st.sampled_from(STREETS)),
        role=role,
    )


@st.composite
def record_pairs(draw):
    """Two records with overlapping attribute pools (same household)."""
    return (
        draw(person_records(record_id="r1", household_id="h1", role=R.HEAD)),
        draw(person_records(record_id="r2", household_id="h1", role=R.HEAD)),
    )


@st.composite
def households_st(draw, household_id="h1", id_prefix="r"):
    """A plausible household: a head, optional spouse, 0-4 members.

    All members share the head's surname and address, ages are
    generation-plausible, and record ids are unique within the household.
    """
    surname = draw(surnames)
    address = draw(st.sampled_from(STREETS[1:]))  # heads have an address
    head_age = draw(st.integers(min_value=20, max_value=70))
    head_sex = draw(sexes)
    members = [
        PersonRecord(
            record_id=f"{id_prefix}_{household_id}_0",
            household_id=household_id,
            first_name=draw(first_names),
            surname=surname,
            sex=head_sex,
            age=head_age,
            occupation=draw(st.sampled_from(OCCUPATIONS)),
            address=address,
            role=R.HEAD,
        )
    ]
    if draw(st.booleans()):
        members.append(
            PersonRecord(
                record_id=f"{id_prefix}_{household_id}_1",
                household_id=household_id,
                first_name=draw(first_names),
                surname=surname,
                sex="f" if head_sex == "m" else "m",
                age=draw(st.integers(min_value=18, max_value=70)),
                occupation=None,
                address=address,
                role=R.WIFE if head_sex == "m" else R.HUSBAND,
            )
        )
    num_children = draw(st.integers(min_value=0, max_value=4))
    for index in range(num_children):
        child_sex = draw(sexes)
        members.append(
            PersonRecord(
                record_id=f"{id_prefix}_{household_id}_c{index}",
                household_id=household_id,
                first_name=draw(first_names),
                surname=surname,
                sex=child_sex,
                age=draw(st.integers(min_value=0, max_value=max(1, head_age - 18))),
                occupation=None,
                address=address,
                role=R.SON if child_sex == "m" else R.DAUGHTER,
            )
        )
    return members


@st.composite
def census_datasets(draw, year=1871, min_households=1, max_households=5):
    """A small, valid single-snapshot :class:`CensusDataset`."""
    count = draw(st.integers(min_value=min_households, max_value=max_households))
    records = []
    for index in range(count):
        records.extend(
            draw(households_st(household_id=f"h{index}", id_prefix=f"{year}"))
        )
    return CensusDataset.from_records(year, records)


@st.composite
def census_dataset_pairs(draw, min_households=5, max_households=12):
    """Two successive snapshots with ground truth, for pipeline properties.

    Drawn examples are seeds into the deterministic synthetic generator:
    each one is a coherent town (births, deaths, marriages, moves, noise)
    rather than independently random records, so pipeline-level
    properties are exercised on realistic structure.  Returns
    ``(old_dataset, new_dataset, series)``.
    """
    seed = draw(st.integers(min_value=0, max_value=2**16))
    households = draw(
        st.integers(min_value=min_households, max_value=max_households)
    )
    series = generate_pair(seed=seed, initial_households=households)
    old_dataset, new_dataset = series.datasets
    return old_dataset, new_dataset, series
