"""RunState serialization properties: roundtrip identity, tamper
detection, schema gating.

A checkpoint that silently loses a field, half-loads a tampered payload
or guesses at a future schema would convert a crash into a *wrong
answer* — strictly worse than the crash.  These tests pin the three
defenses: exact roundtrip, content-hash verification, and
schema-before-payload rejection.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simcache import compress_rows

from repro.checkpoint import (
    PHASE_FINAL,
    PHASE_ROUND,
    SCHEMA_VERSION,
    CheckpointCorrupt,
    CheckpointSchemaError,
    CheckpointStore,
    RunState,
    content_hash,
)
from tests.strategies import words

# -- strategies ---------------------------------------------------------------

record_ids = st.tuples(words, words).map(
    lambda pair: [f"o_{pair[0]}", f"n_{pair[1]}"]
)

scores = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)

iteration_dicts = st.fixed_dictionaries(
    {
        "iteration": st.integers(min_value=1, max_value=50),
        "delta": scores,
        "candidate_subgraphs": st.integers(min_value=0, max_value=1000),
        "accepted_group_links": st.integers(min_value=0, max_value=1000),
        "new_record_links": st.integers(min_value=0, max_value=1000),
        "remaining_old": st.integers(min_value=0, max_value=10000),
        "remaining_new": st.integers(min_value=0, max_value=10000),
        "pairs_scored": st.integers(min_value=0, max_value=100000),
        "cache_hits": st.integers(min_value=0, max_value=100000),
        "cache_misses": st.integers(min_value=0, max_value=100000),
        "seconds": st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False
        ),
    }
)

def _parts(rows):
    """Encoded journal parts — SimilarityCache's export section form."""
    return [compress_rows(rows)] if rows else []


cache_documents = st.fixed_dictionaries(
    {
        "pinned": st.lists(
            st.tuples(words, words, scores).map(list), max_size=8
        ).map(_parts),
        "lazy": st.lists(
            st.tuples(words, words, scores).map(list), max_size=8
        ).map(_parts),
        "bounds": st.lists(
            st.tuples(words, words, scores, words).map(list), max_size=8
        ).map(_parts),
        "hits": st.integers(min_value=0, max_value=10**9),
        "misses": st.integers(min_value=0, max_value=10**9),
        "evictions": st.integers(min_value=0, max_value=10**9),
    }
)

provenance_rows = st.lists(
    st.tuples(
        words,
        words,
        st.sampled_from(["subgraph", "remaining"]),
        st.one_of(st.none(), st.integers(min_value=1, max_value=9)),
        scores,
    ).map(list),
    max_size=8,
)


@st.composite
def run_states(draw):
    phase = draw(st.sampled_from([PHASE_ROUND, PHASE_FINAL]))
    final = phase == PHASE_FINAL
    return RunState(
        round_index=draw(st.integers(min_value=0, max_value=50)),
        phase=phase,
        delta=draw(st.one_of(st.none(), scores)),
        schedule=tuple(draw(st.lists(scores, max_size=6))),
        rounds_finished=draw(st.booleans()),
        record_pairs=draw(st.lists(record_ids, max_size=10)),
        group_pairs=draw(st.lists(record_ids, max_size=10)),
        iterations=draw(st.lists(iteration_dicts, max_size=5)),
        provenance=draw(st.one_of(st.none(), provenance_rows)),
        counters=draw(
            st.dictionaries(words, st.integers(min_value=0), max_size=8)
        ),
        cache=draw(st.one_of(st.none(), cache_documents)),
        config_fingerprint=draw(words),
        data_fingerprint=draw(words),
        subgraph_record_links=(
            draw(st.integers(min_value=0, max_value=10000)) if final else None
        ),
        remaining_record_links=(
            draw(st.integers(min_value=0, max_value=10000)) if final else None
        ),
    )


# -- roundtrip ----------------------------------------------------------------


class TestRoundtrip:
    @given(state=run_states())
    @settings(max_examples=60, deadline=None)
    def test_dumps_loads_identity(self, state):
        """RunState → bytes → RunState is the identity, field for field
        — floats included (shortest-roundtrip repr, never rounded)."""
        assert RunState.loads(state.dumps()) == state

    @given(state=run_states())
    @settings(max_examples=30, deadline=None)
    def test_serialization_is_deterministic(self, state):
        assert state.dumps() == RunState.loads(state.dumps()).dumps()

    @given(state=run_states())
    @settings(max_examples=30, deadline=None)
    def test_document_declares_schema_and_hash(self, state):
        document = json.loads(state.dumps())
        assert document["schema"] == SCHEMA_VERSION
        assert document["content_hash"] == content_hash(document["payload"])


# -- tampering ----------------------------------------------------------------


def _tamper(text: str, field: str, replacement: str) -> str:
    tampered = text.replace(field, replacement, 1)
    assert tampered != text, f"nothing replaced for {field!r}"
    return tampered


class TestTamperDetection:
    def sample_state(self) -> RunState:
        return RunState(
            round_index=2,
            phase=PHASE_ROUND,
            delta=0.65,
            schedule=(0.7, 0.65, 0.6),
            rounds_finished=False,
            record_pairs=[["o1", "n1"], ["o2", "n2"]],
            group_pairs=[["ga", "gb"]],
            iterations=[],
            counters={"pairs_scored": 41},
            config_fingerprint="cafe" * 4,
            data_fingerprint="beef" * 4,
        )

    def test_altered_payload_fails_content_hash(self):
        text = self.sample_state().dumps()
        tampered = _tamper(text, '"o2",', '"oX",')
        with pytest.raises(CheckpointCorrupt, match="content hash"):
            RunState.loads(tampered)

    def test_altered_counter_fails_content_hash(self):
        text = self.sample_state().dumps()
        tampered = _tamper(text, '"pairs_scored":41', '"pairs_scored":14')
        with pytest.raises(CheckpointCorrupt, match="content hash"):
            RunState.loads(tampered)

    def test_truncated_document_is_corrupt(self):
        text = self.sample_state().dumps()
        with pytest.raises(CheckpointCorrupt, match="not valid JSON"):
            RunState.loads(text[: len(text) // 2])

    def test_non_object_document_is_corrupt(self):
        with pytest.raises(CheckpointCorrupt, match="must be an object"):
            RunState.loads("[1, 2, 3]")

    def test_missing_sections_are_corrupt(self):
        document = {"schema": SCHEMA_VERSION}
        with pytest.raises(CheckpointCorrupt, match="payload"):
            RunState.loads(json.dumps(document))

    def test_malformed_payload_is_corrupt_not_half_loaded(self):
        payload = {"round_index": 1}  # most fields missing
        document = {
            "schema": SCHEMA_VERSION,
            "content_hash": content_hash(payload),
            "payload": payload,
        }
        with pytest.raises(CheckpointCorrupt, match="missing or malformed"):
            RunState.loads(json.dumps(document))


class TestSchemaGate:
    def test_unknown_schema_rejected_before_payload(self):
        """A future schema is refused outright — even with a garbage
        payload that would crash any attempt at interpretation."""
        document = {
            "schema": SCHEMA_VERSION + 1,
            "content_hash": "irrelevant",
            "payload": {"layout": ["nobody", "knows"]},
        }
        with pytest.raises(CheckpointSchemaError, match="unsupported"):
            RunState.loads(json.dumps(document))

    def test_missing_schema_rejected(self):
        with pytest.raises(CheckpointSchemaError):
            RunState.loads(json.dumps({"payload": {}, "content_hash": "x"}))


# -- store-level recovery ------------------------------------------------------


class TestStoreRecovery:
    def write_rounds(self, tmp_path, count: int) -> CheckpointStore:
        store = CheckpointStore(tmp_path)
        for index in range(1, count + 1):
            store.write_state(
                RunState(
                    round_index=index,
                    phase=PHASE_ROUND,
                    delta=0.7 - 0.05 * (index - 1),
                    schedule=(0.7, 0.65, 0.6),
                    rounds_finished=False,
                )
            )
        return store

    def test_load_latest_prefers_newest(self, tmp_path):
        store = self.write_rounds(tmp_path, 3)
        assert store.load_latest().round_index == 3

    def test_corrupt_tip_degrades_one_round(self, tmp_path):
        """One corrupted checkpoint costs one round of progress, never
        the whole run — and the skip is recorded, not silent."""
        store = self.write_rounds(tmp_path, 3)
        tip = tmp_path / "round_0003.json"
        tip.write_text(
            tip.read_text(encoding="utf-8").replace('"delta":0.6', '"delta":0.9'),
            encoding="utf-8",
        )
        state = store.load_latest()
        assert state.round_index == 2
        assert [path.name for path, _ in store.skipped] == ["round_0003.json"]

    def test_strict_load_raises_on_corrupt_file(self, tmp_path):
        store = self.write_rounds(tmp_path, 1)
        target = tmp_path / "round_0001.json"
        target.write_text("not json", encoding="utf-8")
        with pytest.raises(CheckpointCorrupt):
            store.load(target)

    def test_missing_file_is_corrupt_not_oserror(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointCorrupt, match="cannot read"):
            store.load(tmp_path / "round_0001.json")

    def test_temp_artifacts_never_listed(self, tmp_path):
        store = self.write_rounds(tmp_path, 1)
        (tmp_path / ".round_0002.json.abc.tmp").write_text(
            "in-flight garbage", encoding="utf-8"
        )
        assert [entry.path.name for entry in store.entries()] == [
            "round_0001.json"
        ]
        assert store.load_latest().round_index == 1
