"""Unit tests for the string similarity substrates."""

import pytest

from repro.similarity.exact import exact_similarity, prefix_similarity
from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity
from repro.similarity.levenshtein import (
    damerau_distance,
    damerau_similarity,
    levenshtein_distance,
    levenshtein_similarity,
)
from repro.similarity.qgram import (
    bigram_similarity,
    qgram_similarity,
    qgrams,
    trigram_similarity,
)


class TestQgrams:
    def test_padded_bigrams(self):
        grams = qgrams("ab", q=2)
        assert len(grams) == 3  # □a, ab, b□
        assert grams[1] == "ab"

    def test_unpadded_bigrams(self):
        assert qgrams("abc", q=2, padded=False) == ["ab", "bc"]

    def test_empty_string(self):
        assert qgrams("", q=2) == []

    def test_whitespace_normalised(self):
        assert qgrams("  John  SMITH ", q=2, padded=False) == qgrams(
            "john smith", q=2, padded=False
        )

    def test_short_string_single_gram(self):
        assert qgrams("a", q=3, padded=False) == ["a"]

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)


class TestQgramSimilarity:
    def test_identical_strings(self):
        assert bigram_similarity("ashworth", "ashworth") == 1.0

    def test_disjoint_strings(self):
        assert bigram_similarity("abab", "cdcd") == 0.0

    def test_both_empty(self):
        assert bigram_similarity("", "") == 1.0

    def test_one_empty(self):
        assert bigram_similarity("john", "") == 0.0

    def test_case_insensitive(self):
        assert bigram_similarity("John", "JOHN") == 1.0

    def test_typo_tolerance(self):
        assert bigram_similarity("ashworth", "ashwort") > 0.8

    def test_symmetric(self):
        left = bigram_similarity("elizabeth", "elisabeth")
        right = bigram_similarity("elisabeth", "elizabeth")
        assert left == right

    def test_range(self):
        for pair in (("smith", "smyth"), ("riley", "varley"), ("ann", "nan")):
            value = bigram_similarity(*pair)
            assert 0.0 <= value <= 1.0

    def test_jaccard_leq_dice(self):
        dice = qgram_similarity("ashworth", "ashwort", mode="dice")
        jaccard = qgram_similarity("ashworth", "ashwort", mode="jaccard")
        assert jaccard <= dice

    def test_overlap_geq_dice(self):
        dice = qgram_similarity("ashworth", "ash", mode="dice")
        overlap = qgram_similarity("ashworth", "ash", mode="overlap")
        assert overlap >= dice

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            qgram_similarity("a", "b", mode="cosine")

    def test_trigram_stricter_than_bigram(self):
        assert trigram_similarity("smith", "smyth") <= bigram_similarity(
            "smith", "smyth"
        )


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein_distance("john", "john") == 0

    def test_single_substitution(self):
        assert levenshtein_distance("smith", "smyth") == 1

    def test_insertion_and_deletion(self):
        assert levenshtein_distance("ashworth", "ashwort") == 1
        assert levenshtein_distance("ann", "anne") == 1

    def test_empty_vs_word(self):
        assert levenshtein_distance("", "abc") == 3

    def test_early_exit_bound(self):
        assert levenshtein_distance("abcdefgh", "zyxwvuts", max_distance=2) == 3

    def test_early_exit_on_length_gap(self):
        assert levenshtein_distance("ab", "abcdefgh", max_distance=2) == 3

    def test_similarity_normalised(self):
        assert levenshtein_similarity("smith", "smyth") == pytest.approx(0.8)
        assert levenshtein_similarity("", "") == 1.0

    def test_damerau_transposition_cheaper(self):
        assert levenshtein_distance("ahsworth", "ashworth") == 2
        assert damerau_distance("ahsworth", "ashworth") == 1

    def test_damerau_similarity_range(self):
        assert 0.0 <= damerau_similarity("john", "joan") <= 1.0
        assert damerau_similarity("", "") == 1.0


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_classic_example(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_no_match(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro_similarity("", "") == 1.0
        assert jaro_similarity("a", "") == 0.0

    def test_winkler_prefix_boost(self):
        plain = jaro_similarity("ashworth", "ashworthe")
        boosted = jaro_winkler_similarity("ashworth", "ashworthe")
        assert boosted >= plain

    def test_winkler_scale_validation(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_scale=0.5)


class TestExact:
    def test_exact_match(self):
        assert exact_similarity("m", "m") == 1.0
        assert exact_similarity("M ", "m") == 1.0

    def test_mismatch(self):
        assert exact_similarity("m", "f") == 0.0

    def test_prefix(self):
        assert prefix_similarity("ashworth", "ashworthe") == 1.0
        assert prefix_similarity("ashworth", "ackroyd") == 0.0

    def test_prefix_length_validation(self):
        with pytest.raises(ValueError):
            prefix_similarity("a", "b", length=0)
