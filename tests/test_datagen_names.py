"""Tests for the name/occupation/address pools and Zipf sampling."""

import random
from collections import Counter

import pytest

from repro.datagen.names import (
    FEMALE_FIRST_NAMES,
    MALE_FIRST_NAMES,
    OCCUPATIONS,
    STREETS,
    SURNAMES,
    NameSampler,
    sample_distinct,
    zipf_weights,
)


class TestPools:
    def test_pools_nonempty_and_unique(self):
        for pool in (MALE_FIRST_NAMES, FEMALE_FIRST_NAMES, SURNAMES,
                     OCCUPATIONS, STREETS):
            assert len(pool) == len(set(pool))
            assert all(name == name.lower() for name in pool)

    def test_frequent_names_lead(self):
        assert MALE_FIRST_NAMES[0] == "john"
        assert FEMALE_FIRST_NAMES[0] == "mary"
        assert SURNAMES[:2] == ("ashworth", "smith")


class TestZipfWeights:
    def test_decreasing(self):
        weights = zipf_weights(10, 1.0)
        assert weights == sorted(weights, reverse=True)

    def test_first_weight_is_one(self):
        assert zipf_weights(5, 0.8)[0] == 1.0

    def test_exponent_zero_uniform(self):
        assert zipf_weights(4, 0.0) == [1.0] * 4

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestNameSampler:
    def test_deterministic_given_seed(self):
        first = NameSampler(random.Random(5))
        second = NameSampler(random.Random(5))
        assert [first.first_name("m") for _ in range(20)] == [
            second.first_name("m") for _ in range(20)
        ]

    def test_sex_validation(self):
        sampler = NameSampler(random.Random(1))
        with pytest.raises(ValueError):
            sampler.first_name("x")

    def test_skew_towards_frequent_names(self):
        sampler = NameSampler(random.Random(2))
        counts = Counter(sampler.first_name("m") for _ in range(3000))
        assert counts["john"] > counts.get("norman", 0)
        # The top name should dominate clearly under Zipf weights.
        assert counts["john"] / 3000 > 0.10

    def test_address_format(self):
        sampler = NameSampler(random.Random(3))
        address = sampler.address()
        number, rest = address.split(" ", 1)
        assert number.isdigit()
        assert rest in STREETS

    def test_gendered_occupation_guard(self):
        sampler = NameSampler(random.Random(4))
        for _ in range(300):
            assert sampler.occupation("f") not in (
                "coal miner", "blacksmith", "quarryman",
            )

    def test_sex_roughly_balanced(self):
        sampler = NameSampler(random.Random(6))
        males = sum(1 for _ in range(2000) if sampler.sex() == "m")
        assert 800 < males < 1200


class TestSampleDistinct:
    def test_distinct(self):
        rng = random.Random(1)
        sample = sample_distinct(rng, SURNAMES, 10)
        assert len(set(sample)) == 10

    def test_too_many_rejected(self):
        with pytest.raises(ValueError):
            sample_distinct(random.Random(1), ("a",), 2)
