"""Unit tests for CensusDataset and its Table-1 statistics."""

import pytest

import repro.model.roles as R
from repro.model.dataset import CensusDataset
from repro.model.records import PersonRecord


def record(record_id, household_id, first="john", last="smith", **kwargs):
    fields = dict(sex="m", age=30, occupation="weaver", address="bank st",
                  role=R.HEAD)
    fields.update(kwargs)
    return PersonRecord(record_id, household_id, first, last, **fields)


class TestConstruction:
    def test_groups_by_household(self, census_1871):
        assert len(census_1871) == 8
        assert census_1871.household_ids == ["a71", "b71"]
        assert census_1871.household("a71").size == 5

    def test_duplicate_record_id_rejected(self):
        dataset = CensusDataset.from_records(1871, [record("r1", "h1")])
        with pytest.raises(ValueError):
            dataset.add_record(record("r1", "h2", role=R.WIFE, sex="f"))

    def test_household_of(self, census_1871):
        assert census_1871.household_of("1871_6").household_id == "b71"

    def test_record_lookup(self, census_1871):
        assert census_1871.record("1871_3").first_name == "alice"

    def test_subset_sorted(self, census_1871):
        records = census_1871.subset(["1871_8", "1871_1"])
        assert [r.record_id for r in records] == ["1871_1", "1871_8"]

    def test_iter_records_order(self, census_1871):
        ids = [r.record_id for r in census_1871.iter_records()]
        assert ids == sorted(ids)

    def test_repr(self, census_1871):
        assert "1871" in repr(census_1871)


class TestStats:
    def test_name_frequency(self, census_1871):
        freq = census_1871.name_frequency()
        assert freq[("john", "ashworth")] == 1
        assert freq[("john", "smith")] == 1
        assert sum(freq.values()) == 8

    def test_duplicate_names_counted(self, census_1881):
        freq = census_1881.name_frequency()
        assert freq[("john", "ashworth")] == 2  # households a and d

    def test_missing_value_ratio_zero_when_complete(self):
        dataset = CensusDataset.from_records(1871, [record("r1", "h1")])
        assert dataset.missing_value_ratio() == 0.0

    def test_missing_value_ratio_counts_cells(self):
        dataset = CensusDataset.from_records(
            1871,
            [record("r1", "h1", occupation=None, address=None)],
        )
        # 2 of 5 compared attribute cells missing.
        assert dataset.missing_value_ratio() == pytest.approx(0.4)

    def test_missing_value_ratio_custom_attributes(self):
        dataset = CensusDataset.from_records(
            1871, [record("r1", "h1", occupation=None)]
        )
        assert dataset.missing_value_ratio(("occupation",)) == 1.0

    def test_missing_value_ratio_unknown_attribute(self):
        dataset = CensusDataset.from_records(1871, [record("r1", "h1")])
        with pytest.raises(KeyError):
            dataset.missing_value_ratio(("hat_size",))

    def test_stats_row(self, census_1881):
        stats = census_1881.stats()
        assert stats.year == 1881
        assert stats.num_records == 11
        assert stats.num_households == 4
        assert stats.unique_name_combinations == 8
        assert stats.average_name_frequency == pytest.approx(11 / 8)

    def test_stats_empty_dataset(self):
        stats = CensusDataset(1871).stats()
        assert stats.num_records == 0
        assert stats.average_name_frequency == 0.0
        assert stats.missing_value_ratio == 0.0


class TestValidate:
    def test_valid_dataset_passes(self, census_1871):
        census_1871.validate()

    def test_detects_orphan_record(self, census_1871):
        census_1871.records["ghost"] = record("ghost", "a71")
        with pytest.raises(ValueError):
            census_1871.validate()
