"""Tests for the learning-based weight optimisation."""

import math

import pytest

from repro.learning.logistic import LogisticModel, fit_logistic, log_loss
from repro.learning.weights import (
    learn_similarity_function,
    model_to_sim_func,
    training_pairs,
)
from repro.similarity.vector import build_similarity_function

NAME_WEIGHTS = [("first_name", "qgram", 0.5), ("surname", "qgram", 0.5)]


class TestLogisticModel:
    def test_predict_proba_range(self):
        model = LogisticModel(weights=[1.0, -0.5], bias=0.2)
        for features in ([0, 0], [1, 1], [0.5, 0.3]):
            assert 0.0 <= model.predict_proba(features) <= 1.0

    def test_decision_linear(self):
        model = LogisticModel(weights=[2.0, 1.0], bias=-1.0)
        assert model.decision([1.0, 1.0]) == pytest.approx(2.0)

    def test_feature_count_checked(self):
        model = LogisticModel(weights=[1.0], bias=0.0)
        with pytest.raises(ValueError):
            model.predict_proba([1.0, 2.0])

    def test_predict_threshold(self):
        model = LogisticModel(weights=[4.0], bias=-2.0)
        assert model.predict([1.0])
        assert not model.predict([0.0])


class TestFitLogistic:
    def test_learns_separable_data(self):
        features = [[0.0], [0.1], [0.2], [0.8], [0.9], [1.0]]
        labels = [0, 0, 0, 1, 1, 1]
        model = fit_logistic(features, labels, epochs=500)
        assert model.predict_proba([0.95]) > 0.8
        assert model.predict_proba([0.05]) < 0.2
        assert model.weights[0] > 0

    def test_imbalanced_data_not_collapsed(self):
        features = [[0.1]] * 50 + [[0.9]] * 2
        labels = [0] * 50 + [1] * 2
        model = fit_logistic(features, labels, epochs=400)
        assert model.predict_proba([0.9]) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_logistic([], [])
        with pytest.raises(ValueError):
            fit_logistic([[1.0]], [1])  # single class
        with pytest.raises(ValueError):
            fit_logistic([[1.0], [0.0, 1.0]], [1, 0])  # ragged rows

    def test_log_loss_decreases_from_random(self):
        features = [[0.0], [1.0]] * 10
        labels = [0, 1] * 10
        trained = fit_logistic(features, labels, epochs=300)
        random_model = LogisticModel(weights=[0.0], bias=0.0)
        assert log_loss(trained, features, labels) < log_loss(
            random_model, features, labels
        )

    def test_deterministic(self):
        features = [[0.0], [0.3], [0.7], [1.0]]
        labels = [0, 0, 1, 1]
        first = fit_logistic(features, labels, epochs=50, seed=3)
        second = fit_logistic(features, labels, epochs=50, seed=3)
        assert first.weights == second.weights


class TestModelConversion:
    def test_positive_weights_normalised(self):
        template = build_similarity_function(NAME_WEIGHTS, 0.5)
        model = LogisticModel(weights=[3.0, 1.0], bias=-2.0)
        sim_func = model_to_sim_func(model, template)
        assert sim_func.weights == pytest.approx((0.75, 0.25))
        assert sim_func.threshold == pytest.approx(0.5)

    def test_negative_weights_clipped(self):
        template = build_similarity_function(NAME_WEIGHTS, 0.5)
        model = LogisticModel(weights=[2.0, -1.0], bias=-1.0)
        sim_func = model_to_sim_func(model, template)
        assert sim_func.weights == pytest.approx((1.0, 0.0))

    def test_all_clipped_falls_back(self):
        template = build_similarity_function(NAME_WEIGHTS, 0.5)
        model = LogisticModel(weights=[-1.0, -2.0], bias=0.5)
        sim_func = model_to_sim_func(model, template, fallback_threshold=0.7)
        assert sim_func.threshold == 0.7

    def test_threshold_clamped(self):
        template = build_similarity_function(NAME_WEIGHTS, 0.5)
        model = LogisticModel(weights=[1.0, 1.0], bias=-10.0)
        sim_func = model_to_sim_func(model, template)
        assert sim_func.threshold == 1.0


class TestEndToEnd:
    def test_training_pairs_labels(self, small_pair):
        old, new = small_pair.datasets
        truth = small_pair.ground_truth.record_mapping(old.year, new.year)
        template = build_similarity_function(NAME_WEIGHTS, 0.5)
        features, labels = training_pairs(old, new, truth, template)
        assert len(features) == len(labels)
        assert 0 < sum(labels) < len(labels)
        assert all(len(row) == 2 for row in features)
        assert all(0.0 <= value <= 1.0 for row in features for value in row)

    def test_learn_similarity_function(self, small_pair):
        old, new = small_pair.datasets
        truth = small_pair.ground_truth.record_mapping(old.year, new.year)
        learned = learn_similarity_function(old, new, truth, epochs=80)
        assert learned.num_training_pairs > 0
        assert learned.num_positive_pairs > 0
        assert abs(sum(learned.sim_func.weights) - 1.0) < 1e-9
        # First name should carry substantial learned weight — the same
        # insight the paper encodes by hand in ω2.
        assert learned.weight_of("first_name") > learned.weight_of("occupation")

    def test_learned_function_scores_matches_higher(self, small_pair):
        old, new = small_pair.datasets
        truth = small_pair.ground_truth.record_mapping(old.year, new.year)
        learned = learn_similarity_function(old, new, truth, epochs=80)
        true_pairs = truth.pairs()[:30]
        match_scores = [
            learned.sim_func.agg_sim(old.record(o), new.record(n))
            for o, n in true_pairs
        ]
        mismatch_scores = [
            learned.sim_func.agg_sim(old.record(o1), new.record(n2))
            for (o1, _), (_, n2) in zip(true_pairs, reversed(true_pairs))
            if (o1, n2) not in truth
        ]
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(match_scores) > mean(mismatch_scores) + 0.2
