"""Unit tests for the remaining-records matcher (Alg. 1, line 17)."""

import pytest

import repro.model.roles as R
from repro.blocking.standard import CrossProductBlocker
from repro.core.remaining import match_remaining
from repro.model.records import PersonRecord
from repro.similarity.vector import build_similarity_function

FUNC = build_similarity_function(
    [("first_name", "qgram", 0.5), ("surname", "qgram", 0.5)], 0.8
)


def record(record_id, first, last, age=30, household="h1"):
    return PersonRecord(record_id, household, first, last, "m", age, role=R.HEAD)


def run(old, new, func=FUNC, margin=0.0, max_age=3.0):
    return match_remaining(
        old, new, func, CrossProductBlocker(), 10, max_age, margin
    )


class TestBasicMatching:
    def test_clear_match(self):
        mapping = run([record("o1", "john", "smith")],
                      [record("n1", "john", "smith", age=40)])
        assert mapping.pairs() == [("o1", "n1")]

    def test_below_threshold_excluded(self):
        mapping = run([record("o1", "john", "smith")],
                      [record("n1", "amos", "varley", age=40)])
        assert len(mapping) == 0

    def test_one_to_one_enforced(self):
        old = [record("o1", "john", "smith"), record("o2", "john", "smith", age=31)]
        new = [record("n1", "john", "smith", age=40)]
        mapping = run(old, new)
        assert len(mapping) == 1

    def test_greedy_prefers_higher_score(self):
        old = [record("o1", "john", "smith")]
        new = [
            record("n1", "john", "smith", age=40),
            record("n2", "john", "smyth", age=40),
        ]
        mapping = run(old, new)
        assert mapping.get_new("o1") == "n1"


class TestAgeFilter:
    def test_impossible_age_rejected(self):
        mapping = run([record("o1", "john", "smith", age=10)],
                      [record("n1", "john", "smith", age=50)])
        assert len(mapping) == 0

    def test_missing_age_passes_filter(self):
        old = [record("o1", "john", "smith", age=None)]
        mapping = run(old, [record("n1", "john", "smith", age=50)])
        assert len(mapping) == 1

    def test_boundary_deviation_allowed(self):
        mapping = run([record("o1", "john", "smith", age=30)],
                      [record("n1", "john", "smith", age=43)])
        assert len(mapping) == 1  # deviation exactly 3


class TestAmbiguityMargin:
    def test_tied_candidates_skipped(self):
        old = [record("o1", "john", "smith")]
        new = [
            record("n1", "john", "smith", age=40),
            record("n2", "john", "smith", age=41),
        ]
        assert len(run(old, new, margin=0.0)) == 1
        assert len(run(old, new, margin=0.05)) == 0

    def test_clear_winner_passes_margin(self):
        old = [record("o1", "john", "smith")]
        new = [
            record("n1", "john", "smith", age=40),
            record("n2", "john", "varley", age=40),
        ]
        assert len(run(old, new, margin=0.05)) == 1

    def test_margin_checked_on_old_side_too(self):
        old = [
            record("o1", "john", "smith"),
            record("o2", "john", "smith", age=31),
        ]
        new = [record("n1", "john", "smith", age=40)]
        assert len(run(old, new, margin=0.05)) == 0


class TestEdgeCases:
    def test_empty_inputs(self):
        assert len(run([], [])) == 0
        assert len(run([record("o1", "a", "b")], [])) == 0

    def test_deterministic_on_equal_scores(self):
        old = [record("o1", "john", "smith"), record("o2", "john", "smith", age=31)]
        new = [record("n1", "john", "smith", age=40),
               record("n2", "john", "smith", age=41)]
        first = run(old, new).pairs()
        second = run(old, new).pairs()
        assert first == second
