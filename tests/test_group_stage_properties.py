"""Property-based tests of the group-matching engine (§3.3–§3.4).

Three contracts of the indexed parallel group stage, each exercised on
generated towns rather than hand-picked fixtures:

* the inverted record→household index emits exactly the candidate group
  pairs the brute-force |G_i| × |G_{i+1}| scan keeps;
* group-link selection is invariant under shuffling of the candidate
  subgraph order, for both conflict policies (reject and lazy requeue);
* the selection outcome is independent of the interpreter hash seed —
  checked for real, in subprocesses launched with different
  ``PYTHONHASHSEED`` values.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import LinkageConfig
from repro.core.enrichment import complete_groups
from repro.core.prematching import prematching
from repro.core.scoring import score_subgraphs
from repro.core.selection import select_group_matches
from repro.core.subgraph import (
    GroupPairIndex,
    brute_force_group_pairs,
    build_all_subgraphs,
)

from tests.strategies import census_dataset_pairs

RELAXED = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _group_stage(pair, config=None):
    """Run pre-matching + subgraph construction + scoring on a town pair."""
    old_dataset, new_dataset, _ = pair
    config = config or LinkageConfig()
    prematch = prematching(
        list(old_dataset.iter_records()),
        list(new_dataset.iter_records()),
        config.build_sim_func(),
        config.build_blocker(),
    )
    enriched_old = complete_groups(old_dataset)
    enriched_new = complete_groups(new_dataset)
    subgraphs = build_all_subgraphs(
        prematch, enriched_old, enriched_new, config
    )
    score_subgraphs(subgraphs, prematch, config)
    return prematch, enriched_old, enriched_new, subgraphs, config


def _selection_signature(selection):
    """Order-sensitive content signature of a selection outcome."""
    return (
        sorted(selection.group_mapping.pairs()),
        sorted(selection.extract_record_mapping().pairs()),
        [
            (s.old_group_id, s.new_group_id, tuple(s.vertices))
            for s in selection.accepted
        ],
    )


class TestIndexEqualsBruteForce:
    @given(census_dataset_pairs(min_households=4, max_households=10))
    @RELAXED
    def test_candidate_sets_identical(self, pair):
        """The inverted index emits exactly the brute-force candidate
        set — same pairs, same deterministic order."""
        old_dataset, new_dataset, _ = pair
        config = LinkageConfig()
        prematch = prematching(
            list(old_dataset.iter_records()),
            list(new_dataset.iter_records()),
            config.build_sim_func(),
            config.build_blocker(),
        )
        enriched_old = complete_groups(old_dataset)
        enriched_new = complete_groups(new_dataset)
        index = GroupPairIndex(enriched_old, enriched_new)
        indexed = index.candidate_pairs(prematch)
        brute = brute_force_group_pairs(prematch, enriched_old, enriched_new)
        assert indexed == brute
        # The skip count the instrumentation derives is never negative.
        assert index.cross_product_size >= len(indexed)

    @given(census_dataset_pairs(min_households=4, max_households=10))
    @RELAXED
    def test_groups_by_label_covers_candidates(self, pair):
        """Every candidate pair is witnessed by at least one cluster
        label bucket of the inverted-label view."""
        old_dataset, new_dataset, _ = pair
        config = LinkageConfig()
        prematch = prematching(
            list(old_dataset.iter_records()),
            list(new_dataset.iter_records()),
            config.build_sim_func(),
            config.build_blocker(),
        )
        enriched_old = complete_groups(old_dataset)
        enriched_new = complete_groups(new_dataset)
        index = GroupPairIndex(enriched_old, enriched_new)
        buckets = index.groups_by_label(prematch)
        witnessed = {
            (old_group, new_group)
            for old_groups, new_groups in buckets.values()
            for old_group in old_groups
            for new_group in new_groups
        }
        assert set(index.candidate_pairs(prematch)) <= witnessed


class TestSelectionShuffleInvariance:
    @given(
        census_dataset_pairs(min_households=4, max_households=10),
        st.randoms(use_true_random=False),
    )
    @RELAXED
    def test_reject_policy_order_independent(self, pair, rng):
        prematch, _, _, subgraphs, config = _group_stage(pair)
        baseline = _selection_signature(select_group_matches(subgraphs))
        shuffled = list(subgraphs)
        rng.shuffle(shuffled)
        assert _selection_signature(select_group_matches(shuffled)) == baseline

    @given(
        census_dataset_pairs(min_households=4, max_households=10),
        st.randoms(use_true_random=False),
    )
    @RELAXED
    def test_requeue_policy_order_independent(self, pair, rng):
        prematch, _, _, subgraphs, config = _group_stage(
            pair, LinkageConfig(allow_singleton_subgraphs=True)
        )
        baseline = _selection_signature(
            select_group_matches(
                subgraphs, prematch=prematch, config=config, requeue_stale=True
            )
        )
        shuffled = list(subgraphs)
        rng.shuffle(shuffled)
        again = _selection_signature(
            select_group_matches(
                shuffled, prematch=prematch, config=config, requeue_stale=True
            )
        )
        assert again == baseline

    @given(
        census_dataset_pairs(min_households=4, max_households=10),
        st.randoms(use_true_random=False),
    )
    @RELAXED
    def test_requeued_selection_stays_record_disjoint(self, pair, rng):
        """The lazy-invalidation path never lets a stale entry re-emit a
        link referencing an already-consumed record — re-derived from
        the accepted subgraphs, not trusted from the queue loop."""
        prematch, _, _, subgraphs, config = _group_stage(
            pair, LinkageConfig(allow_singleton_subgraphs=True)
        )
        shuffled = list(subgraphs)
        rng.shuffle(shuffled)
        selection = select_group_matches(
            shuffled, prematch=prematch, config=config, requeue_stale=True
        )
        assert selection.disjointness_violations() == []


#: Subprocess payload: link a small seeded town and print a content
#: signature of the result.  Run under different PYTHONHASHSEED values,
#: the output must be byte-identical — the executable form of the
#: "hash-seed independent selection" claim.
_HASHSEED_SCRIPT = """
import json
from repro.core.config import LinkageConfig
from repro.core.pipeline import link_datasets
from repro.datagen import generate_pair

series = generate_pair(seed=99, initial_households=12)
old, new = series.datasets
for requeue in (False, True):
    config = LinkageConfig(selection_requeue=requeue,
                           allow_singleton_subgraphs=requeue)
    result = link_datasets(old, new, config)
    print(json.dumps({
        "requeue": requeue,
        "records": sorted(result.record_mapping.pairs()),
        "groups": sorted(result.group_mapping.pairs()),
    }, sort_keys=True))
"""


@pytest.mark.parametrize("other_seed", ["1", "424242"])
def test_selection_is_hash_seed_independent(other_seed):
    src_dir = Path(__file__).resolve().parent.parent / "src"

    def run(seed):
        env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=str(src_dir))
        return subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            capture_output=True, text=True, env=env, check=True,
        ).stdout

    assert run("0") == run(other_seed)
