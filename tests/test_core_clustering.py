"""Tests for the pre-matching clustering strategies."""

import pytest

from repro.core.clustering import (
    ALL_STRATEGIES,
    CENTER,
    CONNECTED_COMPONENTS,
    STAR,
    cluster_records,
)

IDS = ["a", "b", "c", "d", "e"]


def clusters_of(strategy, scores, threshold=0.5, ids=IDS):
    return cluster_records(ids, scores, threshold, strategy)


class TestConnectedComponents:
    def test_chains_merge(self):
        scores = {("a", "b"): 0.9, ("b", "c"): 0.6}
        clusters = clusters_of(CONNECTED_COMPONENTS, scores)
        assert ["a", "b", "c"] in clusters

    def test_threshold_filters(self):
        scores = {("a", "b"): 0.4}
        clusters = clusters_of(CONNECTED_COMPONENTS, scores)
        assert ["a"] in clusters and ["b"] in clusters

    def test_singletons_for_unmatched(self):
        clusters = clusters_of(CONNECTED_COMPONENTS, {})
        assert clusters == [["a"], ["b"], ["c"], ["d"], ["e"]]


class TestCenterClustering:
    def test_chain_broken_at_center(self):
        """b joins a's cluster; c is only similar to b (a satellite), so
        it cannot chain in — the mega-cluster problem is avoided."""
        scores = {("a", "b"): 0.9, ("b", "c"): 0.8}
        clusters = clusters_of(CENTER, scores)
        assert ["a", "b"] in clusters
        assert ["c"] in clusters

    def test_join_via_center_allowed(self):
        scores = {("a", "b"): 0.9, ("a", "c"): 0.8}
        clusters = clusters_of(CENTER, scores)
        assert ["a", "b", "c"] in clusters

    def test_deterministic(self):
        scores = {("a", "b"): 0.9, ("b", "c"): 0.8, ("c", "d"): 0.7}
        assert clusters_of(CENTER, scores) == clusters_of(CENTER, scores)


class TestStarClustering:
    def test_satellite_prefers_best_center(self):
        # Two stars a and d; c is adjacent to both centers — it must
        # join the better-scoring one (d).
        scores = {
            ("a", "b"): 0.95,
            ("d", "e"): 0.9,
            ("a", "c"): 0.6,
            ("c", "d"): 0.8,
        }
        clusters = clusters_of(STAR, scores)
        cluster_with_c = next(group for group in clusters if "c" in group)
        assert "d" in cluster_with_c

    def test_chain_broken_at_satellite(self):
        scores = {("a", "b"): 0.9, ("b", "c"): 0.8}
        clusters = clusters_of(STAR, scores)
        assert ["c"] in clusters

    def test_every_record_exactly_once(self):
        scores = {
            ("a", "b"): 0.9,
            ("b", "c"): 0.85,
            ("c", "d"): 0.8,
            ("d", "e"): 0.75,
        }
        clusters = clusters_of(STAR, scores)
        flattened = sorted(record for group in clusters for record in group)
        assert flattened == IDS


class TestCommon:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            cluster_records(IDS, {}, 0.5, "agglomerative")

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_partition_property(self, strategy):
        scores = {
            ("a", "b"): 0.9,
            ("b", "c"): 0.7,
            ("a", "d"): 0.55,
            ("d", "e"): 0.5,
        }
        clusters = cluster_records(IDS, scores, 0.5, strategy)
        flattened = sorted(record for group in clusters for record in group)
        assert flattened == IDS

    @pytest.mark.parametrize("strategy", (CENTER, STAR))
    def test_finer_than_connected_components(self, strategy):
        scores = {
            ("a", "b"): 0.9,
            ("b", "c"): 0.8,
            ("c", "d"): 0.7,
            ("d", "e"): 0.6,
        }
        fine = cluster_records(IDS, scores, 0.5, strategy)
        coarse = cluster_records(IDS, scores, 0.5, CONNECTED_COMPONENTS)
        assert len(fine) >= len(coarse)
        # Every fine cluster lies inside one coarse cluster.
        coarse_of = {
            record: index
            for index, group in enumerate(coarse)
            for record in group
        }
        for group in fine:
            assert len({coarse_of[record] for record in group}) == 1

    def test_pipeline_accepts_all_strategies(self, census_1871, census_1881,
                                             example_config):
        import dataclasses

        from repro.core.pipeline import link_datasets

        for strategy in ALL_STRATEGIES:
            config = dataclasses.replace(example_config, clustering=strategy)
            result = link_datasets(census_1871, census_1881, config)
            assert ("1871_1", "1881_1") in result.record_mapping
