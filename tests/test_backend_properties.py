"""Property battery for the group-matching backend protocol (PR 7).

Every registered backend — not just the paper's default engine — must
honour the structural contract of the iterative loop on generated towns:

* **record-disjoint selections**: the final record mapping is strictly
  1:1 (no old or new record linked twice), and the per-round invariant
  registry (``validate=True``) passes for every backend, so disjointness
  also holds round by round;
* **schedule monotonicity**: the δ rounds walk the schedule strictly
  downward, the unlinked-record counts never increase, and links only
  accumulate — a backend cannot unlink, relink or resurrect records in
  a later round;
* the Hausdorff group score is a pure function of the two member *sets*:
  permutation-invariant in member order and independent of duplicated
  entries.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.backends import available_backends, hausdorff_similarity
from repro.core.config import LinkageConfig
from repro.core.pipeline import link_datasets

from tests.strategies import census_dataset_pairs

#: The shipped backends of the bake-off.  Derived from the registry so a
#: newly registered backend is pulled into the battery automatically;
#: the frozen differential reference is the only exclusion (it *is* the
#: default engine, re-checking it here would double the battery's cost
#: for no new coverage).
BACKENDS = tuple(
    name for name in available_backends() if name != "prerefactor-reference"
)

RELAXED = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def test_battery_covers_all_shipped_backends():
    assert set(BACKENDS) >= {"default", "rgl", "hausdorff"}


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendContract:
    @given(pair=census_dataset_pairs(min_households=4, max_households=9))
    @RELAXED
    def test_selection_record_disjoint(self, backend, pair):
        """The final mapping is 1:1 and every round passed the invariant
        registry (which checks selection disjointness inline)."""
        old_dataset, new_dataset, _ = pair
        config = LinkageConfig(group_backend=backend, validate=True)
        result = link_datasets(old_dataset, new_dataset, config)
        pairs = sorted(result.record_mapping.pairs())
        old_ids = [old_id for old_id, _ in pairs]
        new_ids = [new_id for _, new_id in pairs]
        assert len(set(old_ids)) == len(old_ids), (
            f"{backend}: an old record was linked twice"
        )
        assert len(set(new_ids)) == len(new_ids), (
            f"{backend}: a new record was linked twice"
        )
        # Linked ids actually exist in their datasets.
        assert set(old_ids) <= set(old_dataset.record_ids)
        assert set(new_ids) <= set(new_dataset.record_ids)

    @given(pair=census_dataset_pairs(min_households=4, max_households=9))
    @RELAXED
    def test_schedule_monotone(self, backend, pair):
        """δ strictly decreases, remaining counts never increase, and
        links only accumulate across rounds."""
        old_dataset, new_dataset, _ = pair
        config = LinkageConfig(group_backend=backend)
        result = link_datasets(old_dataset, new_dataset, config)
        iterations = result.iterations
        assert iterations, f"{backend}: no δ rounds ran"

        deltas = [stats.delta for stats in iterations]
        assert all(
            earlier > later
            for earlier, later in zip(deltas, deltas[1:])
        ), f"{backend}: δ schedule not strictly decreasing: {deltas}"
        assert deltas[0] == pytest.approx(config.delta_high)
        assert deltas[-1] >= config.delta_low - 1e-9

        for earlier, later in zip(iterations, iterations[1:]):
            assert later.remaining_old <= earlier.remaining_old, (
                f"{backend}: remaining old records grew between rounds"
            )
            assert later.remaining_new <= earlier.remaining_new, (
                f"{backend}: remaining new records grew between rounds"
            )

        for stats in iterations:
            assert stats.new_record_links >= 0
            assert stats.accepted_group_links >= 0
        # Every per-round link is reflected in the final mapping (the
        # remaining pass can only add on top).
        round_links = sum(stats.new_record_links for stats in iterations)
        assert round_links + result.remaining_record_links == len(
            result.record_mapping
        ), f"{backend}: per-round link counts do not add up"


# -- Hausdorff score purity ---------------------------------------------------


@st.composite
def member_sets_with_sims(draw):
    """Two member-id lists plus a complete pairwise similarity table."""
    old_ids = draw(
        st.lists(
            st.sampled_from([f"o{i}" for i in range(6)]),
            min_size=1, max_size=5, unique=True,
        )
    )
    new_ids = draw(
        st.lists(
            st.sampled_from([f"n{i}" for i in range(6)]),
            min_size=1, max_size=5, unique=True,
        )
    )
    sims = {
        pair: draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        )
        for pair in itertools.product(old_ids, new_ids)
    }
    return old_ids, new_ids, sims


class TestHausdorffSimilarity:
    @given(
        data=member_sets_with_sims(),
        rng=st.randoms(use_true_random=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_permutation_invariant(self, data, rng):
        old_ids, new_ids, sims = data
        score = hausdorff_similarity(old_ids, new_ids, lambda a, b: sims[a, b])
        shuffled_old = list(old_ids)
        shuffled_new = list(new_ids)
        rng.shuffle(shuffled_old)
        rng.shuffle(shuffled_new)
        assert hausdorff_similarity(
            shuffled_old, shuffled_new, lambda a, b: sims[a, b]
        ) == score

    @given(data=member_sets_with_sims())
    @settings(max_examples=50, deadline=None)
    def test_duplicates_do_not_change_the_score(self, data):
        """A true set function: repeating a member is a no-op."""
        old_ids, new_ids, sims = data
        score = hausdorff_similarity(old_ids, new_ids, lambda a, b: sims[a, b])
        assert hausdorff_similarity(
            old_ids + [old_ids[0]], new_ids + [new_ids[-1]],
            lambda a, b: sims[a, b],
        ) == score

    @given(data=member_sets_with_sims())
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_best_and_worst_pair(self, data):
        """The score sits inside the pairwise-similarity envelope."""
        old_ids, new_ids, sims = data
        score = hausdorff_similarity(old_ids, new_ids, lambda a, b: sims[a, b])
        assert min(sims.values()) - 1e-12 <= score <= max(sims.values()) + 1e-12

    def test_empty_side_scores_zero(self):
        assert hausdorff_similarity([], ["n0"], lambda a, b: 1.0) == 0.0
        assert hausdorff_similarity(["o0"], [], lambda a, b: 1.0) == 0.0
