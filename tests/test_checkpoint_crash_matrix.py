"""Crash matrix: kill the pipeline at every boundary, resume, compare.

The checkpoint subsystem's contract is *byte identity*: a run killed
after any round boundary (or after the final pass, or mid-write) and
then resumed must produce exactly the result an uninterrupted run
produces — same mappings, same per-round ledgers, same effort and event
counters (``repro.checkpoint.ledger_hash``).  This battery proves the
contract at **every** kill point, serial and with 2 workers, instead of
sampling one.
"""

import pytest

from repro.checkpoint import (
    CheckpointMismatch,
    CheckpointStore,
    ledger_hash,
    result_ledger,
)
from repro.checkpoint.faults import CrashingStore, SimulatedCrash
from repro.core.config import LinkageConfig
from repro.core.pipeline import link_datasets
from repro.datagen import generate_pair
from repro.instrumentation import CHECKPOINT_LOADS, CHECKPOINT_WRITES

SEED = 7
HOUSEHOLDS = 24


@pytest.fixture(scope="module")
def datasets():
    series = generate_pair(seed=SEED, initial_households=HOUSEHOLDS)
    return series.datasets


def make_config(workers: int = 1, **overrides) -> LinkageConfig:
    return LinkageConfig(validate=True, n_workers=workers, **overrides)


@pytest.fixture(scope="module")
def baselines(datasets):
    """Uninterrupted reference runs per worker count."""
    old, new = datasets
    return {
        workers: link_datasets(old, new, make_config(workers))
        for workers in (1, 2)
    }


def crash_then_resume(datasets, config, tmp_path, **crash_kwargs):
    """Run until the injected kill, then resume from the directory."""
    old, new = datasets
    store = CrashingStore(tmp_path, **crash_kwargs)
    with pytest.raises(SimulatedCrash):
        link_datasets(old, new, config, checkpoint_dir=store)
    return link_datasets(
        old, new, config, checkpoint_dir=tmp_path, resume=True
    )


class TestCrashMatrix:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_every_round_boundary_resumes_byte_identical(
        self, datasets, baselines, tmp_path, workers
    ):
        """The tentpole guarantee, at every δ-round kill point."""
        baseline = baselines[workers]
        expected = ledger_hash(baseline)
        rounds = len(baseline.iterations)
        assert rounds >= 2, "workload too small to exercise the matrix"
        for kill_after in range(1, rounds + 1):
            directory = tmp_path / f"w{workers}-k{kill_after}"
            resumed = crash_then_resume(
                datasets,
                make_config(workers),
                directory,
                crash_after_round=kill_after,
            )
            assert ledger_hash(resumed) == expected, (
                f"resume after round {kill_after} (workers={workers}) "
                f"diverged:\n{result_ledger(resumed)}"
            )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_crash_after_final_checkpoint_reconstructs(
        self, datasets, baselines, tmp_path, workers
    ):
        """A kill after the run-complete snapshot: resume rebuilds the
        result outright, without recomputing, and still hash-matches."""
        resumed = crash_then_resume(
            datasets,
            make_config(workers),
            tmp_path,
            crash_after_final=True,
        )
        assert ledger_hash(resumed) == ledger_hash(baselines[workers])
        # Reconstruction performs exactly one load and zero new writes.
        assert resumed.profile.value(CHECKPOINT_LOADS) == 1
        assert resumed.profile.value(CHECKPOINT_WRITES) == 0

    def test_mid_write_kill_leaves_prior_round_loadable(
        self, datasets, baselines, tmp_path
    ):
        """The worst instant: payload staged, never published.  The
        previous round must remain the loadable tip — no corrupt file,
        no temp residue — and resume from it must still be identical."""
        old, new = datasets
        store = CrashingStore(tmp_path, fail_replace_at=2)
        with pytest.raises(OSError, match="injected failure"):
            link_datasets(old, new, make_config(), checkpoint_dir=store)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["round_0001.json"]

        recovery = CheckpointStore(tmp_path)
        state = recovery.load_latest()
        assert state is not None and state.round_index == 1
        assert recovery.skipped == []

        resumed = link_datasets(
            old, new, make_config(), checkpoint_dir=tmp_path, resume=True
        )
        assert ledger_hash(resumed) == ledger_hash(baselines[1])

    def test_resumed_run_loads_exactly_once(self, datasets, tmp_path):
        resumed = crash_then_resume(
            datasets, make_config(), tmp_path, crash_after_round=1
        )
        assert resumed.profile.value(CHECKPOINT_LOADS) == 1


class TestResumedRunsValidate:
    def test_resumed_result_passes_full_registry(
        self, datasets, tmp_path
    ):
        """Resumed results satisfy every registered invariant — including
        the chain-consistency check over the restored rounds."""
        from repro.validation.invariants import validate_result

        resumed = crash_then_resume(
            datasets, make_config(), tmp_path, crash_after_round=2
        )
        old, new = datasets
        report = validate_result(resumed, old, new, make_config())
        assert report.ok, report.summary()
        assert "checkpoint-chain-consistent" in report.checked

    def test_stitched_iteration_chain_is_detectable(
        self, datasets, tmp_path
    ):
        """The chain invariant actually bites: corrupting a restored
        round's frontier accounting is flagged."""
        from repro.validation.invariants import validate_result

        resumed = crash_then_resume(
            datasets, make_config(), tmp_path, crash_after_round=1
        )
        resumed.iterations[0].remaining_old += 1
        old, new = datasets
        report = validate_result(resumed, old, new, make_config())
        assert "checkpoint-chain-consistent" in report.violated_invariants()


class TestCadenceAndOptions:
    def test_checkpoint_every_skips_intermediate_rounds(
        self, datasets, baselines, tmp_path
    ):
        old, new = datasets
        config = make_config(checkpoint_every=2)
        link_datasets(old, new, config, checkpoint_dir=tmp_path)
        store = CheckpointStore(tmp_path)
        round_indices = [
            entry.round_index
            for entry in store.entries()
            if entry.kind == "round"
        ]
        assert round_indices, "no round checkpoints written"
        final_round = len(baselines[1].iterations)
        for index in round_indices:
            assert index % 2 == 0 or index == final_round, (
                f"round {index} checkpointed despite checkpoint_every=2"
            )
        assert store.entries()[-1].kind == "final"

    def test_resume_from_sparse_cadence_is_identical(
        self, datasets, baselines, tmp_path
    ):
        """Killed between checkpoints: resume replays the uncheckpointed
        rounds and still converges byte-identically."""
        config = make_config(checkpoint_every=2)
        resumed = crash_then_resume(
            datasets, config, tmp_path, crash_after_round=2
        )
        # checkpoint_every is part of the config fingerprint, so compare
        # against a fresh uninterrupted run under the same config.
        old, new = datasets
        baseline = link_datasets(old, new, make_config(checkpoint_every=2))
        assert ledger_hash(resumed) == ledger_hash(baseline)

    def test_without_cache_export_mappings_still_identical(
        self, datasets, baselines, tmp_path
    ):
        """checkpoint_cache=False trades effort-counter identity for
        smaller snapshots; the decided mappings must not change."""
        config = make_config(checkpoint_cache=False)
        resumed = crash_then_resume(
            datasets, config, tmp_path, crash_after_round=2
        )
        baseline = baselines[1]
        assert (
            resumed.record_mapping.as_jsonable()
            == baseline.record_mapping.as_jsonable()
        )
        assert (
            resumed.group_mapping.as_jsonable()
            == baseline.group_mapping.as_jsonable()
        )

    def test_resume_on_empty_directory_runs_fresh(
        self, datasets, baselines, tmp_path
    ):
        """resume=True with no checkpoint yet is resume-on-start: the
        run starts from scratch and checkpoints normally."""
        old, new = datasets
        result = link_datasets(
            old, new, make_config(), checkpoint_dir=tmp_path, resume=True
        )
        assert ledger_hash(result) == ledger_hash(baselines[1])
        assert (tmp_path / "final.json").exists()

    def test_resume_without_directory_rejected(self, datasets):
        old, new = datasets
        with pytest.raises(ValueError, match="checkpoint directory"):
            link_datasets(old, new, make_config(), resume=True)


class TestSeriesStateCrashMatrix:
    """Kill the *series-state* store mid-incremental-update: a plain
    re-run against the surviving directory must converge to the same
    SeriesState — byte-identical pair files — and the same decisions
    ledger as an uninterrupted run."""

    @pytest.fixture(scope="class")
    def series(self):
        from repro.datagen.generator import GeneratorConfig, generate_series

        return generate_series(GeneratorConfig(
            seed=SEED, num_snapshots=3, initial_households=18
        )).datasets

    @pytest.fixture(scope="class")
    def control(self, series, tmp_path_factory):
        """Uninterrupted incremental run: reference store + ledger hash."""
        from repro.checkpoint import analysis_ledger_hash
        from repro.evolution.analysis import analyse_series

        directory = tmp_path_factory.mktemp("series-control")
        analysis = analyse_series(
            series, config=LinkageConfig(), series_state=directory
        )
        return directory, analysis_ledger_hash(analysis)

    @staticmethod
    def assert_stores_byte_identical(control_dir, recovered_dir):
        control_files = sorted(p.name for p in control_dir.iterdir())
        recovered_files = sorted(p.name for p in recovered_dir.iterdir())
        assert recovered_files == control_files
        for name in control_files:
            assert (recovered_dir / name).read_bytes() == (
                control_dir / name
            ).read_bytes(), f"series pair file {name} diverged after crash"

    def test_kill_mid_update_then_rerun_converges(
        self, series, control, tmp_path
    ):
        from repro.checkpoint import analysis_ledger_hash
        from repro.checkpoint.faults import CrashingSeriesStore
        from repro.evolution.analysis import analyse_series
        from repro.instrumentation import (
            SERIES_PAIRS_RELINKED,
            SERIES_PAIRS_REUSED,
        )

        control_dir, expected = control
        store = CrashingSeriesStore(tmp_path, crash_after_writes=1)
        with pytest.raises(SimulatedCrash):
            analyse_series(
                series, config=LinkageConfig(), series_state=store
            )
        # Exactly the first pair survived, durably published.
        assert len(list(tmp_path.iterdir())) == 1
        resumed = analyse_series(
            series, config=LinkageConfig(), series_state=tmp_path
        )
        assert analysis_ledger_hash(resumed) == expected
        # The surviving pair was reused, only the missing one re-linked.
        assert resumed.profile.value(SERIES_PAIRS_REUSED) == 1
        assert resumed.profile.value(SERIES_PAIRS_RELINKED) == 1
        self.assert_stores_byte_identical(control_dir, tmp_path)

    def test_publish_failure_leaves_no_corrupt_state(
        self, series, control, tmp_path
    ):
        """The worst instant for a pair write: payload staged, rename
        fails.  No temp residue, no corrupt file — the re-run re-links
        the unpublished pair and converges byte-identically."""
        from repro.checkpoint import analysis_ledger_hash
        from repro.checkpoint.faults import CrashingSeriesStore
        from repro.evolution.analysis import analyse_series

        control_dir, expected = control
        store = CrashingSeriesStore(tmp_path, fail_replace_at=2)
        with pytest.raises(OSError, match="injected failure"):
            analyse_series(
                series, config=LinkageConfig(), series_state=store
            )
        assert len(list(tmp_path.iterdir())) == 1  # no temp residue
        resumed = analyse_series(
            series, config=LinkageConfig(), series_state=tmp_path
        )
        assert analysis_ledger_hash(resumed) == expected
        self.assert_stores_byte_identical(control_dir, tmp_path)

    def test_kill_during_revision_update_converges(
        self, series, control, tmp_path
    ):
        """Crash while a *revision* is being folded in (both pairs dirty,
        killed after rewriting the first): the re-run finishes the
        update and matches an uninterrupted revised control exactly."""
        from repro.checkpoint import analysis_ledger_hash
        from repro.checkpoint.faults import CrashingSeriesStore
        from repro.datagen import revise_middle_record
        from repro.evolution.analysis import analyse_series

        revised = list(series)
        revised[1] = revise_middle_record(series[1])

        control_dir = tmp_path / "revised-control"
        revised_control = analyse_series(
            revised, config=LinkageConfig(), series_state=control_dir
        )
        expected = analysis_ledger_hash(revised_control)

        crash_dir = tmp_path / "crash"
        # Warm on the original series, then crash mid-revision-update.
        analyse_series(
            series, config=LinkageConfig(), series_state=crash_dir
        )
        store = CrashingSeriesStore(crash_dir, crash_after_writes=1)
        with pytest.raises(SimulatedCrash):
            analyse_series(
                revised, config=LinkageConfig(), series_state=store
            )
        resumed = analyse_series(
            revised, config=LinkageConfig(), series_state=crash_dir
        )
        assert analysis_ledger_hash(resumed) == expected
        self.assert_stores_byte_identical(control_dir, crash_dir)


class TestMismatchGuards:
    def test_config_change_rejected(self, datasets, tmp_path):
        old, new = datasets
        store = CrashingStore(tmp_path, crash_after_round=1)
        with pytest.raises(SimulatedCrash):
            link_datasets(old, new, make_config(), checkpoint_dir=store)
        with pytest.raises(CheckpointMismatch, match="configuration"):
            link_datasets(
                old,
                new,
                make_config(delta_low=0.55),
                checkpoint_dir=tmp_path,
                resume=True,
            )

    def test_data_change_rejected(self, datasets, tmp_path):
        old, new = datasets
        store = CrashingStore(tmp_path, crash_after_round=1)
        with pytest.raises(SimulatedCrash):
            link_datasets(old, new, make_config(), checkpoint_dir=store)
        other = generate_pair(seed=11, initial_households=HOUSEHOLDS)
        other_old, other_new = other.datasets
        with pytest.raises(CheckpointMismatch, match="input data"):
            link_datasets(
                other_old,
                other_new,
                make_config(),
                checkpoint_dir=tmp_path,
                resume=True,
            )
