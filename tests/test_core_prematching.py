"""Unit tests for pre-matching (Section 3.2), including Fig. 3."""

import pytest

from repro.blocking.standard import CrossProductBlocker
from repro.core.prematching import prematching
from repro.similarity.vector import build_similarity_function

NAME_FUNC = build_similarity_function(
    [("first_name", "qgram", 0.5), ("surname", "qgram", 0.5)], 1.0
)


def run_prematch(census_1871, census_1881, func=NAME_FUNC):
    return prematching(
        list(census_1871.iter_records()),
        list(census_1881.iter_records()),
        func,
        CrossProductBlocker(),
    )


class TestFig3Clusters:
    """The running example with ω = (0.5, 0.5) on names and δ = 1 must
    reproduce the ten clusters of Fig. 3."""

    def test_number_of_clusters(self, census_1871, census_1881):
        result = run_prematch(census_1871, census_1881)
        assert result.num_clusters == 10

    def test_john_ashworth_cluster(self, census_1871, census_1881):
        result = run_prematch(census_1871, census_1881)
        assert result.cluster_of("1871_1") == ["1871_1", "1881_1", "1881_9"]

    def test_elizabeth_ashworth_cluster(self, census_1871, census_1881):
        result = run_prematch(census_1871, census_1881)
        assert result.cluster_of("1871_2") == ["1871_2", "1881_10", "1881_2"]

    def test_smith_clusters(self, census_1871, census_1881):
        result = run_prematch(census_1871, census_1881)
        assert result.cluster_of("1871_6") == ["1871_6", "1881_4"]
        assert result.cluster_of("1871_8") == ["1871_8", "1881_6"]

    def test_singletons(self, census_1871, census_1881):
        result = run_prematch(census_1871, census_1881)
        # John Riley (H), Alice Ashworth (I), Alice Smith (K), Mary (G).
        for record_id in ("1871_5", "1871_3", "1881_7", "1881_8"):
            assert result.cluster_of(record_id) == [record_id]

    def test_alice_records_have_different_labels(self, census_1871, census_1881):
        result = run_prematch(census_1871, census_1881)
        assert not result.same_label("1871_3", "1881_7")


class TestPreMatchResult:
    def test_every_record_labelled(self, census_1871, census_1881):
        result = run_prematch(census_1871, census_1881)
        total = len(census_1871) + len(census_1881)
        assert len(result.labels) == total

    def test_cluster_size(self, census_1871, census_1881):
        result = run_prematch(census_1871, census_1881)
        assert result.cluster_size("1871_1") == 3
        assert result.cluster_size("1871_5") == 1

    def test_matched_pairs_above_threshold(self, census_1871, census_1881):
        result = run_prematch(census_1871, census_1881)
        assert ("1871_1", "1881_1") in result.matched_pairs
        assert ("1871_3", "1881_7") not in result.matched_pairs

    def test_pair_sim_lazy_computation(self, census_1871, census_1881):
        result = run_prematch(census_1871, census_1881)
        # Alice/Alice is not a candidate at δ=1 but can still be scored.
        value = result.pair_sim("1871_3", "1881_7")
        assert 0.0 < value < 1.0

    def test_relaxed_threshold_merges_more(self, census_1871, census_1881):
        relaxed = build_similarity_function(
            [("first_name", "qgram", 0.5), ("surname", "qgram", 0.5)], 0.5
        )
        result = run_prematch(census_1871, census_1881, relaxed)
        assert result.num_clusters < 10
        # At δ = 0.5 Alice Ashworth and Alice Smith share a cluster.
        assert result.same_label("1871_3", "1881_7")

    def test_cached_scores_reused(self, census_1871, census_1881):
        cache = {}
        old = list(census_1871.iter_records())
        new = list(census_1881.iter_records())
        blocker = CrossProductBlocker()
        first = prematching(old, new, NAME_FUNC, blocker, cached_scores=cache)
        assert cache  # populated
        poisoned = dict(cache)
        key = ("1871_1", "1881_1")
        cache[key] = 0.0  # prove the cache is consulted
        second = prematching(old, new, NAME_FUNC, blocker, cached_scores=cache)
        assert key not in second.matched_pairs
        cache.update(poisoned)

    def test_cached_pairs_filtered_to_current_records(
        self, census_1871, census_1881
    ):
        old = list(census_1871.iter_records())[:2]
        new = list(census_1881.iter_records())
        pairs = {("1871_1", "1881_1"), ("1871_9999", "1881_1")}
        result = prematching(old, new, NAME_FUNC, CrossProductBlocker(),
                             cached_pairs=pairs)
        assert ("1871_1", "1881_1") in result.matched_pairs

    def test_multi_record_clusters(self, census_1871, census_1881):
        result = run_prematch(census_1871, census_1881)
        multi = result.multi_record_clusters()
        assert all(len(members) > 1 for members in multi.values())
        assert len(multi) == 6  # clusters A-F of Fig. 3
