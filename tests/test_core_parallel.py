"""Parallel pre-matching engine: determinism and serial equivalence.

The multiprocess scorer (repro.core.parallel) must be a pure speed knob:
for any worker count the scores, and therefore every downstream mapping,
are identical to a serial run.
"""

import pytest

from repro.core.config import LinkageConfig
from repro.core.parallel import resolve_workers, score_pairs_chunked
from repro.core.pipeline import link_datasets
from repro.core.prematching import prematching
from repro.blocking.standard import CrossProductBlocker
from repro.datagen import generate_pair
from repro.similarity.vector import build_similarity_function

SIM = build_similarity_function(
    [("first_name", "qgram", 0.5), ("surname", "qgram", 0.5)], 0.7
)


@pytest.fixture(scope="module")
def workload():
    series = generate_pair(seed=20170321, initial_households=40)
    return series.datasets


@pytest.fixture(scope="module")
def indexes(workload):
    old, new = workload
    old_index = {r.record_id: r for r in old.iter_records()}
    new_index = {r.record_id: r for r in new.iter_records()}
    pairs = sorted(
        (old_id, new_id)
        for old_id in list(old_index)[:40]
        for new_id in list(new_index)[:40]
    )
    return old_index, new_index, pairs


class TestScorePairsChunked:
    def test_serial_scores_every_pair(self, indexes):
        old_index, new_index, pairs = indexes
        scores = score_pairs_chunked(pairs, old_index, new_index, SIM)
        assert set(scores) == set(pairs)
        assert all(0.0 <= score <= 1.0 for score in scores.values())

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_equals_serial(self, indexes, workers):
        old_index, new_index, pairs = indexes
        serial = score_pairs_chunked(pairs, old_index, new_index, SIM)
        # Tiny chunks force a real multi-chunk pool even on this workload.
        parallel = score_pairs_chunked(
            pairs, old_index, new_index, SIM,
            n_workers=workers, chunk_size=97,
        )
        assert parallel == serial

    def test_small_workload_short_circuits_to_serial(self, indexes):
        old_index, new_index, pairs = indexes
        subset = pairs[:10]
        # chunk_size >= workload: must not start a pool (same result).
        scores = score_pairs_chunked(
            subset, old_index, new_index, SIM, n_workers=8, chunk_size=1024
        )
        assert set(scores) == set(subset)

    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1


class TestParallelPrematching:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_prematch_clusters_identical(self, workload, workers):
        old, new = workload
        old_records = list(old.iter_records())[:60]
        new_records = list(new.iter_records())[:60]
        serial = prematching(
            old_records, new_records, SIM, CrossProductBlocker()
        )
        parallel = prematching(
            old_records, new_records, SIM, CrossProductBlocker(),
            n_workers=workers, chunk_size=128,
        )
        assert parallel.matched_pairs == serial.matched_pairs
        assert parallel.labels == serial.labels
        assert parallel.clusters == serial.clusters


class TestParallelPipeline:
    """Acceptance: n_workers in {2, 4} yields mappings identical to serial
    on a seeded generate_pair workload."""

    @pytest.fixture(scope="class")
    def serial_result(self, workload):
        old, new = workload
        return link_datasets(old, new, LinkageConfig(n_workers=1))

    @pytest.mark.parametrize("workers", [2, 4])
    def test_link_datasets_identical(self, workload, serial_result, workers):
        old, new = workload
        config = LinkageConfig(n_workers=workers, worker_chunk_size=256)
        result = link_datasets(old, new, config)
        assert (
            result.record_mapping.pairs()
            == serial_result.record_mapping.pairs()
        )
        assert sorted(result.group_mapping.pairs()) == sorted(
            serial_result.group_mapping.pairs()
        )
        # Same work, same diagnostics.
        assert len(result.iterations) == len(serial_result.iterations)
        assert result.profile.value("pairs_scored") == \
            serial_result.profile.value("pairs_scored")

    def test_all_cores_setting(self, workload):
        old, new = workload
        result = link_datasets(old, new, LinkageConfig(n_workers=0))
        serial = link_datasets(old, new, LinkageConfig())
        assert result.record_mapping.pairs() == serial.record_mapping.pairs()

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            LinkageConfig(n_workers=-1)
        with pytest.raises(ValueError):
            LinkageConfig(worker_chunk_size=0)
        with pytest.raises(ValueError):
            LinkageConfig(group_worker_chunk_size=0)


class TestParallelGroupStage:
    """The §3.3–§3.4 fan-out: chunked subgraph construction + scoring is
    byte-identical to the serial loop, including the score store."""

    @pytest.fixture(scope="class")
    def stage(self, workload):
        from repro.core.enrichment import complete_groups

        old, new = workload
        config = LinkageConfig()
        prematch = prematching(
            list(old.iter_records()),
            list(new.iter_records()),
            config.build_sim_func(),
            config.build_blocker(),
        )
        return prematch, complete_groups(old), complete_groups(new), config

    def _signature(self, subgraphs):
        return [
            (s.old_group_id, s.new_group_id, tuple(s.vertices),
             tuple(s.edges), s.num_anchors, s.g_sim)
            for s in subgraphs
        ]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_chunked_equals_serial(self, stage, workers):
        from repro.core.scoring import score_subgraphs
        from repro.core.subgraph import build_all_subgraphs

        prematch, old, new, config = stage
        serial = build_all_subgraphs(prematch, old, new, config)
        score_subgraphs(serial, prematch, config)
        parallel = build_all_subgraphs(
            prematch, old, new, config,
            n_workers=workers, chunk_size=4, score=True,
        )
        assert self._signature(parallel) == self._signature(serial)

    def test_worker_fresh_scores_folded_back(self, stage):
        """Pair similarities computed lazily inside workers end up in the
        shared score store, exactly as a serial run records them."""
        import copy

        from repro.core.scoring import score_subgraphs
        from repro.core.subgraph import build_all_subgraphs

        prematch, old, new, config = stage
        serial_prematch = copy.deepcopy(prematch)
        parallel_prematch = copy.deepcopy(prematch)
        serial = build_all_subgraphs(serial_prematch, old, new, config)
        score_subgraphs(serial, serial_prematch, config)
        build_all_subgraphs(
            parallel_prematch, old, new, config,
            n_workers=2, chunk_size=4, score=True,
        )
        assert dict(parallel_prematch.scores.items()) == dict(
            serial_prematch.scores.items()
        )

    def test_small_task_list_stays_serial(self, stage):
        """Fewer tasks than one chunk: no pool, same result."""
        from repro.core.subgraph import build_all_subgraphs

        prematch, old, new, config = stage
        serial = build_all_subgraphs(prematch, old, new, config)
        short_circuit = build_all_subgraphs(
            prematch, old, new, config,
            n_workers=4, chunk_size=10_000,
        )
        assert self._signature(short_circuit) == self._signature(serial)
