"""Golden-run regression fixtures: replay every committed spec.

Run ``pytest --update-goldens`` (or ``repro golden --record``) after an
intentional behaviour change to refresh the fixtures.
"""

from pathlib import Path

import pytest

from repro.validation.golden import (
    DEFAULT_SPECS,
    GoldenSpec,
    canonical_json,
    check_golden,
    config_fingerprint,
    diff_documents,
    golden_path,
    load_golden,
    record_golden,
    run_golden,
    specs_by_name,
)

GOLDEN_DIR = Path(__file__).parent / "goldens"


@pytest.mark.parametrize("spec", DEFAULT_SPECS, ids=lambda spec: spec.name)
def test_golden_replay(spec, update_goldens):
    """Tier-1 regression gate: every seeded run matches its fixture."""
    if update_goldens:
        path = record_golden(spec, GOLDEN_DIR)
        assert path.exists()
        return
    check = check_golden(spec, GOLDEN_DIR)
    assert check.ok, check.report()


class TestGoldenDocuments:
    def test_fixtures_are_canonical_on_disk(self):
        """Committed files are byte-identical to their canonical form."""
        for spec in DEFAULT_SPECS:
            path = golden_path(GOLDEN_DIR, spec)
            assert path.exists(), f"missing fixture {path}"
            on_disk = path.read_text(encoding="utf-8")
            assert on_disk == canonical_json(load_golden(path))

    def test_fingerprint_matches_spec_config(self):
        for spec in DEFAULT_SPECS:
            document = load_golden(golden_path(GOLDEN_DIR, spec))
            assert document["config_fingerprint"] == config_fingerprint(
                spec.build_config()
            )
            assert document["name"] == spec.name
            assert document["seed"] == spec.seed

    def test_document_excludes_wall_clock(self):
        document = load_golden(golden_path(GOLDEN_DIR, DEFAULT_SPECS[0]))
        for stats in document["result"]["iterations"]:
            assert "seconds" not in stats

    def test_document_excludes_effort_diagnostics(self):
        """Schema 2: scoring-effort counters are not part of the outcome.

        Series goldens pin an ``analysis`` ledger instead of a pair
        ``result``; the ledger is decisions-only by construction, so
        only pair documents carry iteration statistics to vet."""
        for spec in DEFAULT_SPECS:
            document = load_golden(golden_path(GOLDEN_DIR, spec))
            assert document["schema"] == 2
            for stats in document.get("result", {}).get("iterations", []):
                for effort in ("pairs_scored", "cache_hits", "cache_misses"):
                    assert effort not in stats

    def test_incremental_fixture_pins_decisions_only(self):
        """The series golden carries the analysis ledger and its hash —
        no counters, no timers — and covers every adjacent pair."""
        import hashlib
        import json

        by_name = {spec.name: spec for spec in DEFAULT_SPECS}
        spec = by_name["seed7-incremental-append"]
        document = load_golden(golden_path(GOLDEN_DIR, spec))
        assert document["incremental_snapshots"] == 3
        assert "result" not in document
        ledger = document["analysis"]["ledger"]
        assert len(ledger["years"]) == 3
        assert len(ledger["pairs"]) == 2
        for pair in ledger["pairs"]:
            assert "record_mapping" in pair and "group_mapping" in pair
        # The stored hash matches the stored ledger (same canonical
        # encoding as repro.checkpoint.analysis_ledger_hash), so the
        # fixture cannot drift internally.
        encoded = json.dumps(
            ledger, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        expected = hashlib.sha256(encoded).hexdigest()
        assert document["analysis"]["ledger_hash"] == expected

    def test_no_filtering_variant_matches_default_outcome(self):
        """The committed fixtures themselves prove pruning is lossless:
        seed7 with and without the engine pins the same result."""
        by_name = {spec.name: spec for spec in DEFAULT_SPECS}
        default = load_golden(
            golden_path(GOLDEN_DIR, by_name["seed7-default"])
        )
        unfiltered = load_golden(
            golden_path(GOLDEN_DIR, by_name["seed7-no-filtering"])
        )
        assert default["result"] == unfiltered["result"]
        # Different configs, same outcome — the fingerprints must differ,
        # or the variant would not be exercising anything.
        assert (default["config_fingerprint"]
                != unfiltered["config_fingerprint"])

    def test_resumed_variant_matches_default_outcome(self):
        """The committed fixtures themselves prove resume is
        deterministic: seed7 killed after round 2 and resumed pins the
        exact result (and config fingerprint) of the uninterrupted run."""
        by_name = {spec.name: spec for spec in DEFAULT_SPECS}
        default = load_golden(
            golden_path(GOLDEN_DIR, by_name["seed7-default"])
        )
        resumed = load_golden(
            golden_path(GOLDEN_DIR, by_name["seed7-resumed-round2"])
        )
        assert resumed["result"] == default["result"]
        # Identical configuration — checkpointing is a runtime argument,
        # not a behaviour change, so the fingerprints must coincide.
        assert (resumed["config_fingerprint"]
                == default["config_fingerprint"])
        assert resumed["resume_at_round"] == 2

    def test_rerun_is_byte_stable(self):
        """Two in-process replays of one spec serialize identically."""
        spec = DEFAULT_SPECS[0]
        assert canonical_json(run_golden(spec)) == canonical_json(
            run_golden(spec)
        )


class TestDiffDocuments:
    def test_identical_documents_have_no_diff(self):
        document = load_golden(golden_path(GOLDEN_DIR, DEFAULT_SPECS[0]))
        assert diff_documents(document, document) == []

    def test_scalar_drift_is_named(self):
        expected = {"result": {"num_record_links": 100}}
        actual = {"result": {"num_record_links": 99}}
        (line,) = diff_documents(expected, actual)
        assert "result.num_record_links" in line
        assert "100" in line and "99" in line

    def test_mapping_drift_lists_pairs(self):
        expected = {"record_mapping": [["o1", "n1"], ["o2", "n2"]]}
        actual = {"record_mapping": [["o1", "n1"], ["o2", "n9"]]}
        lines = diff_documents(expected, actual)
        assert any("missing pair o2->n2" in line for line in lines)
        assert any("unexpected pair o2->n9" in line for line in lines)

    def test_missing_key_reported(self):
        lines = diff_documents({"a": 1, "b": 2}, {"a": 1})
        assert lines == ["b: only in expected (2)"]

    def test_diff_truncates(self):
        expected = {f"k{i:03d}": i for i in range(60)}
        actual = {f"k{i:03d}": i + 1 for i in range(60)}
        lines = diff_documents(expected, actual, limit=10)
        assert len(lines) == 11
        assert "more difference(s)" in lines[-1]


class TestSpecs:
    def test_specs_by_name_subset_and_order(self):
        specs = specs_by_name(["seed20170321-default", "seed7-default"])
        assert [spec.name for spec in specs] == [
            "seed20170321-default", "seed7-default"
        ]

    def test_specs_by_name_unknown_raises(self):
        with pytest.raises(KeyError, match="no-such-golden"):
            specs_by_name(["no-such-golden"])

    def test_build_config_normalises_weight_lists(self):
        spec = GoldenSpec(
            "tmp", seed=1, households=5,
            config_overrides=(
                ("weights", [["surname", "jaro_winkler", 0.3]]),
            ),
        )
        config = spec.build_config()
        assert config.weights == (("surname", "jaro_winkler", 0.3),)

    def test_missing_fixture_reports_not_crashes(self, tmp_path):
        check = check_golden(DEFAULT_SPECS[0], tmp_path)
        assert not check.ok
        assert any("fixture missing" in line for line in check.diff)
