"""Unit tests for role unification (Section 3.1 semantics)."""

import pytest

import repro.model.roles as R


class TestUnifyRoles:
    def test_head_and_wife_are_spouses(self):
        assert R.unify_roles(R.HEAD, R.WIFE) == R.SPOUSE

    def test_head_and_husband_are_spouses(self):
        assert R.unify_roles(R.HEAD, R.HUSBAND) == R.SPOUSE

    def test_head_and_son(self):
        assert R.unify_roles(R.HEAD, R.SON) == R.PARENT_CHILD

    def test_head_and_daughter(self):
        assert R.unify_roles(R.HEAD, R.DAUGHTER) == R.PARENT_CHILD

    def test_wife_and_son_is_parent_child(self):
        # The Fig. 2 case: Elizabeth Smith (wife) and Steve Smith (son).
        assert R.unify_roles(R.WIFE, R.SON) == R.PARENT_CHILD

    def test_head_and_father(self):
        assert R.unify_roles(R.HEAD, R.FATHER) == R.PARENT_CHILD

    def test_head_and_mother(self):
        assert R.unify_roles(R.MOTHER, R.HEAD) == R.PARENT_CHILD

    def test_two_children_are_siblings(self):
        assert R.unify_roles(R.SON, R.DAUGHTER) == R.SIBLING
        assert R.unify_roles(R.SON, R.SON) == R.SIBLING

    def test_head_and_brother(self):
        assert R.unify_roles(R.HEAD, R.BROTHER) == R.SIBLING

    def test_grandparents(self):
        assert R.unify_roles(R.HEAD, R.GRANDSON) == R.GRANDPARENT
        assert R.unify_roles(R.WIFE, R.GRANDDAUGHTER) == R.GRANDPARENT
        assert R.unify_roles(R.FATHER, R.SON) == R.GRANDPARENT

    def test_heads_parents_are_spouses(self):
        assert R.unify_roles(R.FATHER, R.MOTHER) == R.SPOUSE

    def test_child_and_child_in_law_are_spouses(self):
        assert R.unify_roles(R.SON, R.DAUGHTER_IN_LAW) == R.SPOUSE
        assert R.unify_roles(R.DAUGHTER, R.SON_IN_LAW) == R.SPOUSE

    def test_head_and_in_laws(self):
        assert R.unify_roles(R.HEAD, R.FATHER_IN_LAW) == R.IN_LAW
        assert R.unify_roles(R.HEAD, R.DAUGHTER_IN_LAW) == R.IN_LAW

    def test_servants_are_co_residents(self):
        assert R.unify_roles(R.HEAD, R.SERVANT) == R.CO_RESIDENT
        assert R.unify_roles(R.SON, R.LODGER) == R.CO_RESIDENT
        assert R.unify_roles(R.SERVANT, R.SERVANT) == R.CO_RESIDENT

    def test_nephew_is_extended_family(self):
        assert R.unify_roles(R.HEAD, R.NEPHEW) == R.EXTENDED

    def test_symmetry_over_all_role_pairs(self):
        roles = sorted(R.ALL_ROLES)
        for role_a in roles:
            for role_b in roles:
                assert R.unify_roles(role_a, role_b) == R.unify_roles(
                    role_b, role_a
                ), (role_a, role_b)

    def test_result_always_a_known_type(self):
        roles = sorted(R.ALL_ROLES)
        for role_a in roles:
            for role_b in roles:
                assert R.unify_roles(role_a, role_b) in R.ALL_REL_TYPES

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError):
            R.unify_roles("stranger", R.HEAD)


class TestHelpers:
    def test_expected_role_after_marriage(self):
        assert R.expected_role_after_marriage("m") == R.HEAD
        assert R.expected_role_after_marriage("f") == R.WIFE

    def test_partner_role(self):
        assert R.partner_role(R.HEAD) == R.WIFE
        assert R.partner_role(R.WIFE) == R.HEAD
        assert R.partner_role(R.SON) is None
