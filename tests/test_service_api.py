"""Query-service API battery: HTTP == in-process identity, pagination
exhaustiveness, cache byte-identity, refresh semantics, both transports.

The sans-IO split (``EvolutionQueryService.handle_request``) carries the
correctness burden, so most tests drive it directly; the asyncio socket
server and the ASGI adapter are then pinned as byte-identical shovels
over the same core.
"""

import asyncio
import json
import threading

import pytest

from repro.core.config import LinkageConfig
from repro.datagen.generator import GeneratorConfig, generate_series
from repro.evolution.analysis import analyse_series
from repro.evolution.io import graph_to_dict
from repro.service import EvolutionQueryService, EvolutionStore
from repro.service.asgi import create_asgi_app
from repro.service.core import canonical_json
from repro.service.http import MAX_REQUEST_HEAD, start_service_server
from repro.validation.differential import service_vs_inprocess


@pytest.fixture(scope="module")
def series():
    return generate_series(GeneratorConfig(
        seed=13, num_snapshots=3, initial_households=14,
    )).datasets


@pytest.fixture(scope="module")
def analysis(series):
    return analyse_series(series, config=LinkageConfig())


@pytest.fixture
def store(analysis, tmp_path):
    store = EvolutionStore(tmp_path)
    store.publish(analysis)
    return store


@pytest.fixture
def service(store):
    return EvolutionQueryService(store)


def get(service, target):
    status, body = service.handle_request("GET", target)
    return status, json.loads(body)


LIST_TARGETS = (
    "/chains/preserve",
    "/patterns/frequencies",
    "/patterns/sequences?length=2",
)


class TestQueryIdentity:
    def test_service_vs_inprocess_differential(self, series):
        """The PR's acceptance differential: every endpoint family's
        served items equal the direct evolution queries, cache on and
        off."""
        outcomes = service_vs_inprocess(series)
        assert [outcome.name for outcome in outcomes] == [
            "service-vs-inprocess(cache)",
            "service-vs-inprocess(no-cache)",
        ]
        for outcome in outcomes:
            assert outcome.ok, outcome.report()

    def test_graph_meta(self, service, analysis):
        status, payload = get(service, "/graph")
        assert status == 200
        assert payload["graph_version"] == service.graph_version
        assert payload["years"] == list(analysis.graph.years)
        assert payload["edges"] == len(analysis.graph.edges)
        assert sum(payload["edge_counts"].values()) == payload["edges"]


class TestPagination:
    @pytest.mark.parametrize("target", LIST_TARGETS)
    @pytest.mark.parametrize("page_size", (1, 2, 7))
    def test_pages_union_to_unpaginated(self, service, target, page_size):
        sep = "&" if "?" in target else "?"
        _, unpaginated = get(service, target)
        total = unpaginated["total"]
        assert len(unpaginated["items"]) == total  # limit=0 -> everything
        collected = []
        for offset in range(0, total + page_size, page_size):
            _, page = get(
                service,
                f"{target}{sep}offset={offset}&limit={page_size}",
            )
            assert page["total"] == total
            assert len(page["items"]) <= page_size
            collected.extend(page["items"])
        # Exhaustive, duplicate-free, order-preserving.
        assert collected == unpaginated["items"]

    def test_offset_past_end_is_empty(self, service):
        _, payload = get(service, "/chains/preserve?offset=100000")
        assert payload["items"] == []
        assert payload["total"] > 0

    def test_bad_pagination_params_rejected(self, service):
        assert get(service, "/chains/preserve?limit=x")[0] == 400
        assert get(service, "/chains/preserve?offset=-1")[0] == 400


class TestCache:
    def test_cache_on_off_byte_identity(self, store):
        cached = EvolutionQueryService(store)
        uncached = EvolutionQueryService(store, cache_enabled=False)
        targets = LIST_TARGETS + ("/graph", "/chains/preserve?limit=2")
        for _ in range(2):  # second pass answers from the cache
            for target in targets:
                assert cached.handle_request(
                    "GET", target
                ) == uncached.handle_request("GET", target)
        assert cached.stats["cache_hits"] == len(targets)
        assert uncached.stats["cache_hits"] == 0

    def test_param_order_never_splits_the_cache(self, service):
        get(service, "/chains/preserve?min_length=1&limit=3")
        get(service, "/chains/preserve?limit=3&min_length=1")
        assert service.stats["cache_hits"] == 1

    def test_errors_are_not_cached(self, service):
        for _ in range(2):
            status, _ = get(service, "/persons/1871/ghost/timeline")
            assert status == 404
        assert service.stats["cache_hits"] == 0

    def test_lru_eviction_bounds_entries(self, store):
        service = EvolutionQueryService(store, cache_size=3)
        for offset in range(7):
            get(service, f"/chains/preserve?offset={offset}")
        assert len(service._cache) == 3
        # The oldest entry was evicted: asking again is a miss ...
        misses = service.stats["cache_misses"]
        get(service, "/chains/preserve?offset=0")
        assert service.stats["cache_misses"] == misses + 1
        # ... while the newest is still a hit.
        get(service, "/chains/preserve?offset=6")
        assert service.stats["cache_hits"] == 1

    def test_cache_size_zero_disables(self, store):
        service = EvolutionQueryService(store, cache_size=0)
        assert not service.cache_enabled


class TestRefresh:
    def grow(self, store):
        datasets = generate_series(GeneratorConfig(
            seed=13, num_snapshots=4, initial_households=14,
        )).datasets
        store.publish(analyse_series(datasets, config=LinkageConfig()))

    def test_refresh_noop(self, service):
        status, _ = service.handle_request("POST", "/refresh")
        assert status == 200
        _, stats = get(service, "/stats")
        assert stats["refreshes_noop"] == 1

    def test_refresh_switches_version_and_invalidates(self, store, service):
        old_version = service.graph_version
        _, before = get(service, "/chains/preserve")
        self.grow(store)
        status, body = service.handle_request("POST", "/refresh")
        payload = json.loads(body)
        assert status == 200
        assert payload["refreshed"] is True
        assert service.graph_version != old_version
        assert len(service._cache) == 0
        _, after = get(service, "/chains/preserve")
        assert after["graph_version"] == service.graph_version
        assert after["total"] >= before["total"]
        assert graph_to_dict(service.graph) == graph_to_dict(
            store.load_graph()
        )

    def test_corrupt_store_falls_back_to_last_good_graph(
        self, store, service
    ):
        version = service.graph_version
        store.manifest_path.write_text("garbage", encoding="utf-8")
        changed = service.refresh()
        assert changed is False
        assert service.stats["refresh_failures"] == 1
        assert service.graph_version == version
        assert get(service, "/chains/preserve")[0] == 200

    def test_bare_graph_service_never_refreshes(self, analysis):
        service = EvolutionQueryService(analysis.graph)
        assert service.refresh() is False


class TestErrorPaths:
    def test_unknown_endpoint(self, service):
        status, payload = get(service, "/nope")
        assert status == 404 and "error" in payload

    def test_unknown_vertex(self, service):
        assert get(service, "/households/1871/ghost/lineage")[0] == 404

    def test_bad_year(self, service):
        assert get(service, "/households/then/h1/lineage")[0] == 400

    def test_unknown_edge_type(self, service, analysis):
        vertex = sorted(
            v for v in analysis.graph.vertices if v[0] == "group"
        )[0]
        _, year, household = vertex
        status, payload = get(
            service,
            f"/households/{year}/{household}/neighborhood?types=teleport",
        )
        assert status == 400 and "teleport" in payload["error"]

    def test_method_not_allowed(self, service):
        assert service.handle_request("PUT", "/graph")[0] == 405
        assert service.handle_request("POST", "/graph")[0] == 405

    def test_depth_budget_maps_to_422(self, service, analysis):
        record = sorted(
            v for v in analysis.graph.vertices if v[0] == "record"
        )[0]
        _, year, record_id = record
        status, payload = get(
            service, f"/persons/{year}/{record_id}/timeline?max_depth=0"
        )
        # max_depth=0 is below the validator's floor of 1 -> 400; a
        # budget of 1 on a deep-enough walk is the 422 path, exercised
        # via the cyclic-graph unit tests and here through the floor.
        assert status == 400
        status, _ = get(
            service, f"/persons/{year}/{record_id}/timeline?max_depth=1"
        )
        assert status in (200, 422)


# -- transports: stdlib asyncio server and ASGI adapter ----------------------


def http_roundtrip(host, port, requests):
    """Open one keep-alive connection and collect (status, body) per
    request line."""

    async def run():
        reader, writer = await asyncio.open_connection(host, port)
        results = []
        for method, target in requests:
            writer.write(
                f"{method} {target} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            status = int(head.split(b" ", 2)[1])
            length = 0
            for line in head.split(b"\r\n")[1:]:
                name, _, value = line.partition(b":")
                if name.strip().lower() == b"content-length":
                    length = int(value.strip())
            body = await reader.readexactly(length)
            results.append((status, body))
        writer.close()
        return results

    return asyncio.run(run())


class TestHttpServer:
    def test_socket_responses_match_core(self, service):
        targets = ("/graph",) + LIST_TARGETS + ("/nope",)

        async def run():
            server = await start_service_server(service, port=0)
            host, port = server.sockets[0].getsockname()[:2]
            loop = asyncio.get_running_loop()
            served = await loop.run_in_executor(
                None, http_roundtrip, host, port,
                [("GET", target) for target in targets],
            )
            server.close()
            await server.wait_closed()
            return served

        served = asyncio.run(run())
        fresh = EvolutionQueryService(service._store)
        assert served == [
            fresh.handle_request("GET", target) for target in targets
        ]

    def test_malformed_request_line(self, service):
        async def run():
            server = await start_service_server(service, port=0)
            host, port = server.sockets[0].getsockname()[:2]
            loop = asyncio.get_running_loop()

            def bad():
                import socket

                with socket.create_connection((host, port)) as sock:
                    sock.sendall(b"NONSENSE\r\n\r\n")
                    return sock.recv(4096)

            raw = await loop.run_in_executor(None, bad)
            server.close()
            await server.wait_closed()
            return raw

        assert asyncio.run(run()).startswith(b"HTTP/1.1 400 ")

    def test_oversized_head_rejected(self, service):
        async def run():
            server = await start_service_server(service, port=0)
            host, port = server.sockets[0].getsockname()[:2]
            loop = asyncio.get_running_loop()

            def huge():
                import socket

                with socket.create_connection((host, port)) as sock:
                    sock.sendall(
                        b"GET / HTTP/1.1\r\nX-Pad: "
                        + b"x" * (2 * MAX_REQUEST_HEAD)
                        + b"\r\n\r\n"
                    )
                    return sock.recv(4096)

            raw = await loop.run_in_executor(None, huge)
            server.close()
            await server.wait_closed()
            return raw

        assert asyncio.run(run()).startswith(b"HTTP/1.1 431 ")

    def test_serve_ready_hook(self, store):
        """The blocking entry point binds, signals readiness, serves."""
        from repro.service.http import serve

        service = EvolutionQueryService(store)
        ready = threading.Event()
        thread = threading.Thread(
            target=serve,
            args=(service,),
            kwargs={"host": "127.0.0.1", "port": 0, "ready": ready},
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10)


class TestAsgiAdapter:
    def run_asgi(self, app, method, target):
        path, _, query = target.partition("?")
        scope = {
            "type": "http",
            "method": method,
            "path": path,
            "query_string": query.encode(),
        }
        sent = []

        async def receive():
            return {"type": "http.request", "body": b"",
                    "more_body": False}

        async def send(message):
            sent.append(message)

        asyncio.run(app(scope, receive, send))
        start = next(m for m in sent if m["type"] == "http.response.start")
        body = b"".join(
            m.get("body", b"")
            for m in sent
            if m["type"] == "http.response.body"
        )
        return start["status"], body

    def test_byte_identity_with_core(self, store):
        service = EvolutionQueryService(store)
        app = create_asgi_app(EvolutionQueryService(store))
        for target in ("/graph",) + LIST_TARGETS + ("/nope",):
            assert self.run_asgi(app, "GET", target) == service.handle_request(
                "GET", target
            )

    def test_lifespan_protocol(self, store):
        app = create_asgi_app(EvolutionQueryService(store))
        sent = []
        messages = iter([
            {"type": "lifespan.startup"},
            {"type": "lifespan.shutdown"},
        ])

        async def receive():
            return next(messages)

        async def send(message):
            sent.append(message)

        asyncio.run(app({"type": "lifespan"}, receive, send))
        assert [m["type"] for m in sent] == [
            "lifespan.startup.complete",
            "lifespan.shutdown.complete",
        ]


def test_canonical_json_is_deterministic():
    a = canonical_json({"b": 1, "a": [2, 3]})
    b = canonical_json({"a": [2, 3], "b": 1})
    assert a == b == b'{"a":[2,3],"b":1}\n'
