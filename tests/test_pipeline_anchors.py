"""Integration tests for the anchored iterative behaviour of Alg. 1.

A straggler — one family member whose name got badly corrupted — can
only be linked structurally once the rest of the family is in the
record mapping (anchors).  These tests build that situation explicitly.
"""

import pytest

import repro.model.roles as R
from repro.core.config import LinkageConfig
from repro.core.pipeline import link_datasets
from repro.model.dataset import CensusDataset
from repro.model.records import PersonRecord


def build_family(year, prefix, household, straggler_first_name):
    """A five-member family; the eldest son's first name is passed in so
    the 1881 version can carry a heavy typo."""
    base_age = 0 if year == 1871 else 10
    return [
        PersonRecord(f"{prefix}1", household, "edmund", "tattersall", "m",
                     44 + base_age, "weaver", "bank st", R.HEAD),
        PersonRecord(f"{prefix}2", household, "harriet", "tattersall", "f",
                     41 + base_age, None, "bank st", R.WIFE),
        PersonRecord(f"{prefix}3", household, straggler_first_name,
                     "tattersall", "m", 15 + base_age, None, "bank st", R.SON),
        PersonRecord(f"{prefix}4", household, "lucy", "tattersall", "f",
                     12 + base_age, None, "bank st", R.DAUGHTER),
        PersonRecord(f"{prefix}5", household, "walter", "tattersall", "m",
                     8 + base_age, None, "bank st", R.SON),
    ]


@pytest.fixture
def straggler_pair():
    # 1871: son is "reuben"; 1881: heavy corruption -> "ceuber".
    old = CensusDataset.from_records(
        1871, build_family(1871, "o", "g1", "reuben")
    )
    new = CensusDataset.from_records(
        1881, build_family(1881, "n", "h1", "ceuber")
    )
    return old, new


class TestAnchoredStraggler:
    def test_straggler_linked_despite_heavy_typo(self, straggler_pair):
        old, new = straggler_pair
        config = LinkageConfig(
            blocking="cross",
            stop_on_empty_round=False,
            delta_low=0.45,
            remaining_threshold=0.9,  # the remaining pass cannot save him
        )
        result = link_datasets(old, new, config)
        assert result.record_mapping.get_new("o3") == "n3"
        # ... and the link arrived via subgraph matching, not line 17.
        assert result.remaining_record_links == 0

    def test_straggler_lost_without_iteration(self, straggler_pair):
        """A single high-threshold round never re-examines the family
        with a relaxed δ, so the typo victim stays unlinked."""
        old, new = straggler_pair
        config = LinkageConfig(
            blocking="cross",
            delta_high=0.7,
            delta_low=0.7,
            stop_on_empty_round=False,
            remaining_threshold=0.9,
        )
        result = link_datasets(old, new, config)
        assert not result.record_mapping.contains_old("o3")

    def test_rest_of_family_linked_in_first_round(self, straggler_pair):
        old, new = straggler_pair
        config = LinkageConfig(
            blocking="cross", stop_on_empty_round=False, delta_low=0.45,
            remaining_threshold=0.9,
        )
        result = link_datasets(old, new, config)
        first_round = result.iterations[0]
        assert first_round.new_record_links == 4
        # The straggler's link lands in a later, relaxed round.
        assert sum(stats.new_record_links for stats in result.iterations) == 5

    def test_group_linked_once(self, straggler_pair):
        old, new = straggler_pair
        config = LinkageConfig(
            blocking="cross", stop_on_empty_round=False, delta_low=0.45,
        )
        result = link_datasets(old, new, config)
        assert result.group_mapping.pairs() == [("g1", "h1")]
