"""Round-trip tests for CSV dataset and mapping I/O."""

import pytest

from repro.model.io import (
    read_dataset,
    read_group_mapping,
    read_record_mapping,
    write_dataset,
    write_group_mapping,
    write_record_mapping,
)
from repro.model.mappings import GroupMapping, RecordMapping


class TestDatasetRoundTrip:
    def test_roundtrip_preserves_records(self, census_1871, tmp_path):
        path = tmp_path / "census_1871.csv"
        write_dataset(census_1871, path)
        loaded = read_dataset(path)
        assert loaded.year == 1871
        assert loaded.record_ids == census_1871.record_ids
        assert loaded.household_ids == census_1871.household_ids
        original = census_1871.record("1871_1")
        restored = loaded.record("1871_1")
        assert restored == original

    def test_roundtrip_preserves_missing_values(self, census_1871, tmp_path):
        path = tmp_path / "census.csv"
        write_dataset(census_1871, path)
        loaded = read_dataset(path)
        assert loaded.record("1871_2").occupation is None

    def test_roundtrip_preserves_entity_ids(self, small_pair, tmp_path):
        dataset = small_pair.datasets[0]
        path = tmp_path / "snapshot.csv"
        write_dataset(dataset, path)
        loaded = read_dataset(path)
        some_record = next(loaded.iter_records())
        assert some_record.entity_id is not None

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("year,record_id,household_id,first_name,surname,sex,"
                        "age,occupation,address,role,entity_id\n")
        with pytest.raises(ValueError):
            read_dataset(path)

    def test_mixed_years_rejected(self, census_1871, tmp_path):
        path = tmp_path / "census.csv"
        write_dataset(census_1871, path)
        lines = path.read_text().splitlines()
        lines.append(lines[1].replace("1871", "1881", 1))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            read_dataset(path)


class TestMappingRoundTrip:
    def test_record_mapping(self, tmp_path):
        mapping = RecordMapping([("o1", "n1"), ("o2", "n2")])
        path = tmp_path / "records.csv"
        write_record_mapping(mapping, path)
        assert read_record_mapping(path) == mapping

    def test_group_mapping(self, tmp_path):
        mapping = GroupMapping([("g1", "h1"), ("g1", "h2")])
        path = tmp_path / "groups.csv"
        write_group_mapping(mapping, path)
        assert read_group_mapping(path) == mapping

    def test_empty_mapping(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_record_mapping(RecordMapping(), path)
        assert len(read_record_mapping(path)) == 0
