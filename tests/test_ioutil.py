"""The shared atomic-write helper: atomicity, cleanup, temp hygiene."""

import os

import pytest

from repro.checkpoint.faults import failing_os_replace
from repro.ioutil import TEMP_SUFFIX, atomic_write_text, is_temp_artifact


class TestAtomicWriteText:
    def test_writes_content_and_returns_path(self, tmp_path):
        target = tmp_path / "out.json"
        returned = atomic_write_text(target, "payload\n")
        assert returned == target
        assert target.read_text(encoding="utf-8") == "payload\n"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.json"
        atomic_write_text(target, "x")
        assert target.read_text(encoding="utf-8") == "x"

    def test_overwrites_existing_file(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old", encoding="utf-8")
        atomic_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "new"

    def test_leaves_no_temporaries_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "out.json", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_fsync_false_still_writes(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "x", fsync=False)
        assert target.read_text(encoding="utf-8") == "x"


class TestPartialWriteCleanup:
    """A failure between staging and publishing must leave the directory
    exactly as it was: old content intact, no temp residue."""

    def test_failed_replace_preserves_old_content(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old", encoding="utf-8")
        with pytest.raises(OSError, match="injected failure"):
            atomic_write_text(target, "new", replace=failing_os_replace)
        assert target.read_text(encoding="utf-8") == "old"

    def test_failed_replace_leaves_no_temp_file(self, tmp_path):
        target = tmp_path / "out.json"
        with pytest.raises(OSError):
            atomic_write_text(target, "new", replace=failing_os_replace)
        assert list(tmp_path.iterdir()) == []

    def test_failed_write_unlinks_temp(self, tmp_path, monkeypatch):
        # Fail during the write itself (disk full, encoding error, ...):
        # the temp file must still be swept.
        def exploding_fsync(fd):
            raise OSError("injected fsync failure")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="fsync"):
            atomic_write_text(tmp_path / "out.json", "x")
        assert list(tmp_path.iterdir()) == []


class TestIsTempArtifact:
    def test_inflight_names_are_temp(self, tmp_path):
        assert is_temp_artifact(f".out.json.abc123{TEMP_SUFFIX}")
        assert is_temp_artifact(tmp_path / ".round_0001.json.x.tmp")

    def test_published_names_are_not_temp(self):
        assert not is_temp_artifact("round_0001.json")
        assert not is_temp_artifact("final.json")
        # Only the dot-prefixed *and* .tmp-suffixed combination is ours.
        assert not is_temp_artifact(".hidden")
        assert not is_temp_artifact("plain.tmp")
