"""Unit tests for the PersonRecord model."""

import pytest

import repro.model.roles as R
from repro.model.records import COMPARABLE_ATTRIBUTES, PersonRecord


def make_record(**overrides):
    fields = dict(
        record_id="1871_1",
        household_id="g1",
        first_name="john",
        surname="ashworth",
        sex="m",
        age=39,
        occupation="weaver",
        address="bacup rd",
        role=R.HEAD,
    )
    fields.update(overrides)
    return PersonRecord(**fields)


class TestConstruction:
    def test_minimal_record(self):
        record = PersonRecord("r1", "h1")
        assert record.record_id == "r1"
        assert record.household_id == "h1"
        assert record.first_name is None
        assert record.role == R.UNKNOWN

    def test_empty_record_id_rejected(self):
        with pytest.raises(ValueError):
            PersonRecord("", "h1")

    def test_empty_household_id_rejected(self):
        with pytest.raises(ValueError):
            PersonRecord("r1", "")

    def test_invalid_sex_rejected(self):
        with pytest.raises(ValueError):
            make_record(sex="x")

    def test_none_sex_allowed(self):
        assert make_record(sex=None).sex is None

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            make_record(age=-1)

    def test_zero_age_allowed(self):
        assert make_record(age=0).age == 0

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError):
            make_record(role="cousin-twice-removed")


class TestAccessors:
    def test_get_by_attribute_name(self):
        record = make_record()
        assert record.get("first_name") == "john"
        assert record.get("age") == 39
        assert record.get("occupation") == "weaver"

    def test_get_unknown_attribute_raises(self):
        with pytest.raises(KeyError):
            make_record().get("shoe_size")

    def test_get_birth_year_requires_year(self):
        record = make_record(age=39)
        assert record.get("birth_year") is None
        assert record.get_with_year("birth_year", 1871) == 1832

    def test_get_with_year_missing_age(self):
        assert make_record(age=None).get_with_year("birth_year", 1871) is None

    def test_get_with_year_passthrough(self):
        assert make_record().get_with_year("surname", 1871) == "ashworth"

    def test_full_name(self):
        assert make_record().full_name == "john ashworth"

    def test_full_name_with_missing_parts(self):
        assert make_record(first_name=None).full_name == "? ashworth"
        assert make_record(surname=None).full_name == "john ?"

    def test_name_key_normalises(self):
        record = make_record(first_name=" John ", surname="ASHWORTH")
        assert record.name_key == ("john", "ashworth")

    def test_comparable_attributes_all_resolvable(self):
        record = make_record()
        for attribute in COMPARABLE_ATTRIBUTES:
            record.get_with_year(attribute, 1871)  # must not raise


class TestMissing:
    def test_none_is_missing(self):
        assert make_record(occupation=None).is_missing("occupation")

    def test_blank_string_is_missing(self):
        assert make_record(occupation="   ").is_missing("occupation")

    def test_value_is_not_missing(self):
        assert not make_record().is_missing("occupation")


class TestReplaceAndIdentity:
    def test_replace_creates_new_record(self):
        record = make_record()
        changed = record.replace(age=40)
        assert changed.age == 40
        assert record.age == 39
        assert changed.record_id == record.record_id

    def test_records_are_hashable_by_id(self):
        record = make_record()
        assert hash(record) == hash(record.record_id)

    def test_records_usable_in_sets(self):
        first = make_record()
        second = make_record(record_id="1871_2")
        assert len({first, second}) == 2

    def test_str_contains_name_and_role(self):
        text = str(make_record())
        assert "john ashworth" in text
        assert "head" in text

    def test_str_handles_missing_values(self):
        text = str(make_record(sex=None, age=None))
        assert "?" in text

    def test_entity_id_excluded_from_equality(self):
        first = make_record(entity_id="p1")
        second = make_record(entity_id="p2")
        assert first == second
