"""Round-trip tests for evolution-graph JSON serialisation."""

import pytest

from repro.evolution.analysis import analyse_series, ground_truth_pair_linker
from repro.evolution.io import (
    graph_from_dict,
    graph_to_dict,
    read_graph,
    write_graph,
)


@pytest.fixture
def analysis(small_series):
    return analyse_series(
        small_series.datasets,
        ground_truth_pair_linker(small_series.ground_truth),
    )


class TestRoundTrip:
    def test_dict_roundtrip_preserves_structure(self, analysis):
        graph = analysis.graph
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.years == graph.years
        assert restored.vertices == graph.vertices
        assert len(restored.edges) == len(graph.edges)

    def test_file_roundtrip(self, analysis, tmp_path):
        graph = analysis.graph
        path = tmp_path / "evolution.json"
        write_graph(graph, path)
        restored = read_graph(path)
        assert restored.vertices == graph.vertices

    def test_queries_survive_roundtrip(self, analysis, tmp_path):
        graph = analysis.graph
        path = tmp_path / "evolution.json"
        write_graph(graph, path)
        restored = read_graph(path)
        assert restored.preserve_chain_counts() == graph.preserve_chain_counts()
        assert len(restored.largest_group_component()) == len(
            graph.largest_group_component()
        )
        assert restored.pattern_counts_by_pair() == graph.pattern_counts_by_pair()

    def test_version_checked(self):
        with pytest.raises(ValueError):
            graph_from_dict({"format_version": 999})
