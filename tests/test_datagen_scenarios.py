"""Scenario registry and distortion-measurement tests (PR 7).

Two layers of guarantees about :mod:`repro.datagen.scenarios`:

* the **registry machinery is inert**: the ``baseline`` scenario
  reproduces :func:`generate_pair` byte for byte, proving that
  parametrising the bootstrap knobs (family/widowed household rates,
  bootstrap-children cap) preserved the seeded RNG sequence exactly;
* each **adversarial scenario produces its advertised distortion**,
  asserted with fixed seeds: tripled corruption raises the missing-cell
  rate, heavy migration raises the between-snapshot departure fraction,
  extreme name skew raises the surname Gini, and sparse households
  shrink the mean household size — each relative to the baseline
  measurement of the *same* seed, plus pinned absolute values for the
  fully deterministic generator.
"""

import pytest

from repro.datagen import (
    ADVERSARIAL_SCENARIOS,
    SCENARIOS,
    Scenario,
    generate_pair,
    generate_scenario_pair,
    get_scenario,
    measure_distortions,
    scenario_names,
)
from repro.datagen.scenarios import MISSING_CELL_ATTRIBUTES, _gini

SEED = 7
HOUSEHOLDS = 60


@pytest.fixture(scope="module")
def distortions():
    """Measured distortions of every scenario at the fixed test seed."""
    return {
        name: measure_distortions(
            generate_scenario_pair(
                name, seed=SEED, initial_households=HOUSEHOLDS
            )
        )
        for name in scenario_names()
    }


class TestRegistry:
    def test_registry_contents(self):
        assert set(ADVERSARIAL_SCENARIOS) == {
            "high_noise",
            "migration_heavy",
            "surname_skew_extreme",
            "sparse_households",
        }
        assert set(scenario_names()) == set(ADVERSARIAL_SCENARIOS) | {
            "baseline"
        }
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
            assert scenario.description

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_scenarios_are_declarative_and_hashable(self):
        """Recipes stay serialisable metadata: hashable, with override
        keys that are real SimulationParams fields."""
        for scenario in SCENARIOS.values():
            hash(scenario)
            params = scenario.simulation_params()
            for key, value in scenario.simulation_overrides:
                assert getattr(params, key) == value

    def test_baseline_recipe_is_empty(self):
        baseline = get_scenario("baseline")
        assert baseline.simulation_overrides == ()
        assert baseline.corruption_scale == 1.0


class TestBaselineIsByteIdentical:
    def test_baseline_matches_generate_pair(self):
        """The load-bearing RNG-preservation proof: routing the default
        recipe through the scenario machinery (including the newly
        parametrised bootstrap knobs) changes not a single record."""
        plain = generate_pair(seed=SEED, initial_households=HOUSEHOLDS)
        scenario = generate_scenario_pair(
            "baseline", seed=SEED, initial_households=HOUSEHOLDS
        )
        assert [d.year for d in plain.datasets] == [
            d.year for d in scenario.datasets
        ]
        for plain_ds, scenario_ds in zip(plain.datasets, scenario.datasets):
            assert plain_ds.records == scenario_ds.records
            assert plain_ds.household_ids == scenario_ds.household_ids
        assert (
            plain.ground_truth.record_mapping(1871, 1881).pairs()
            == scenario.ground_truth.record_mapping(1871, 1881).pairs()
        )


class TestAdvertisedDistortions:
    """Each scenario moves its advertised metric, fixed seed, with
    margin; the untargeted metrics stay close to baseline."""

    def test_high_noise_raises_missing_cells(self, distortions):
        base = distortions["baseline"]
        noisy = distortions["high_noise"]
        assert noisy.missing_cell_rate > base.missing_cell_rate * 1.5
        # Demographics untouched: corruption draws from its own stream.
        assert noisy.migration_fraction == base.migration_fraction
        assert noisy.mean_household_size == base.mean_household_size

    def test_migration_heavy_raises_departures(self, distortions):
        base = distortions["baseline"]
        mobile = distortions["migration_heavy"]
        assert mobile.migration_fraction > base.migration_fraction + 0.08
        # The bootstrap population itself is unchanged (same first
        # snapshot, the overrides only bite during the decade step).
        assert mobile.mean_household_size == base.mean_household_size
        assert mobile.surname_gini == base.surname_gini

    def test_surname_skew_raises_gini(self, distortions):
        base = distortions["baseline"]
        skewed = distortions["surname_skew_extreme"]
        assert skewed.surname_gini > base.surname_gini + 0.15
        assert skewed.migration_fraction == base.migration_fraction

    def test_sparse_households_shrink(self, distortions):
        base = distortions["baseline"]
        sparse = distortions["sparse_households"]
        assert sparse.mean_household_size < base.mean_household_size - 1.0
        assert sparse.mean_household_size < 3.5

    def test_pinned_values(self, distortions):
        """The generator is fully deterministic, so the measured
        distortions at the fixed seed can be pinned outright (update
        alongside any intentional generator change)."""
        pins = {
            "baseline": (0.0496, 0.2445, 0.5960, 4.57),
            "high_noise": (0.0848, 0.2445, 0.6044, 4.57),
            "migration_heavy": (0.0511, 0.3723, 0.5960, 4.57),
            "surname_skew_extreme": (0.0545, 0.2445, 0.8194, 4.57),
            "sparse_households": (0.0383, 0.2793, 0.5526, 2.98),
        }
        for name, (missing, migration, gini, size) in pins.items():
            measured = distortions[name]
            assert measured.missing_cell_rate == pytest.approx(
                missing, abs=5e-4
            ), name
            assert measured.migration_fraction == pytest.approx(
                migration, abs=5e-4
            ), name
            assert measured.surname_gini == pytest.approx(
                gini, abs=5e-4
            ), name
            assert measured.mean_household_size == pytest.approx(
                size, abs=5e-3
            ), name


class TestMeasurement:
    def test_gini_uniform_is_zero(self):
        assert _gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_gini_concentration_increases(self):
        assert _gini([1, 1, 1, 97]) > _gini([10, 20, 30, 40]) > _gini([25, 25, 25, 25])

    def test_gini_degenerate_inputs(self):
        assert _gini([]) == 0.0
        assert _gini([0, 0]) == 0.0

    def test_distortions_as_dict_round_trips(self, distortions):
        stats = distortions["baseline"].as_dict()
        assert set(stats) == {
            "missing_cell_rate",
            "migration_fraction",
            "surname_gini",
            "mean_household_size",
        }
        assert all(isinstance(value, float) for value in stats.values())

    def test_missing_cells_cover_the_corruptible_attributes(self):
        assert set(MISSING_CELL_ATTRIBUTES) == {
            "first_name", "surname", "sex", "age", "occupation", "address",
        }

    def test_measure_requires_two_snapshots(self):
        series = generate_pair(seed=SEED, initial_households=5)
        series.datasets = series.datasets[:1]
        with pytest.raises(ValueError, match="two snapshots"):
            measure_distortions(series)

    def test_scenario_generator_config_threads_through(self):
        config = get_scenario("sparse_households").generator_config(
            seed=3, initial_households=10, start_year=1901
        )
        assert config.seed == 3
        assert config.initial_households == 10
        assert config.start_year == 1901
        assert config.num_snapshots == 2
        assert config.simulation.family_household_rate == 0.30
        assert config.simulation.max_bootstrap_children == 2

    def test_scenario_is_a_plain_dataclass(self):
        clone = Scenario(
            name="x", description="y",
            simulation_overrides=(("fertility_mean", 1.5),),
        )
        assert clone.simulation_params().fertility_mean == 1.5
        assert clone.corruption_params().missing_rates["surname"] == 0.010
