"""Tests for the multi-census evolution analysis pipeline."""

import pytest

from repro.core.config import LinkageConfig
from repro.evolution.analysis import (
    analyse_series,
    ground_truth_pair_linker,
    linkage_pair_linker,
)


class TestAnalyseSeries:
    def test_requires_two_datasets(self, small_series):
        with pytest.raises(ValueError):
            analyse_series(small_series.datasets[:1])

    def test_requires_increasing_years(self, small_series):
        datasets = list(reversed(small_series.datasets))
        with pytest.raises(ValueError):
            analyse_series(datasets)

    def test_ground_truth_analysis(self, small_series):
        analysis = analyse_series(
            small_series.datasets,
            ground_truth_pair_linker(small_series.ground_truth),
        )
        assert len(analysis.pair_patterns) == 2
        table = analysis.pattern_frequency_table()
        assert set(table) == {(1851, 1861), (1861, 1871)}
        for counts in table.values():
            assert set(counts) == {
                "preserve_G", "move", "split", "merge", "add_G", "remove_G",
            }

    def test_linked_analysis_runs(self, small_series):
        analysis = analyse_series(
            small_series.datasets,
            linkage_pair_linker(LinkageConfig()),
        )
        assert len(analysis.pair_patterns) == 2
        assert 0.0 <= analysis.largest_component_share() <= 1.0

    def test_linked_close_to_truth(self, small_series):
        """Pattern counts from linked mappings should be in the same
        ballpark as from true mappings (the headline use case)."""
        truth = analyse_series(
            small_series.datasets,
            ground_truth_pair_linker(small_series.ground_truth),
        )
        linked = analyse_series(small_series.datasets, config=LinkageConfig())
        for pair in truth.pattern_frequency_table():
            true_preserves = truth.pattern_frequency_table()[pair]["preserve_G"]
            linked_preserves = linked.pattern_frequency_table()[pair]["preserve_G"]
            assert linked_preserves >= 0.6 * true_preserves
            assert linked_preserves <= 1.4 * true_preserves + 5

    def test_preserve_interval_table_uses_years(self, small_series):
        analysis = analyse_series(
            small_series.datasets,
            ground_truth_pair_linker(small_series.ground_truth),
        )
        table = analysis.preserve_interval_table(interval_years=10)
        assert all(interval % 10 == 0 for interval in table)

    def test_custom_interval_scaling(self, small_series):
        analysis = analyse_series(
            small_series.datasets,
            ground_truth_pair_linker(small_series.ground_truth),
        )
        by_ten = analysis.preserve_interval_table(10)
        by_one = analysis.preserve_interval_table(1)
        assert {k // 10: v for k, v in by_ten.items()} == by_one
