"""Tests for the grid-search calibration utility."""

import pytest

from repro.core.config import LinkageConfig
from repro.evaluation.calibration import (
    GROUP_F,
    MEAN_F,
    RECORD_F,
    GridPoint,
    grid_search,
)
from repro.evaluation.metrics import QualityResult


@pytest.fixture(scope="module")
def workload(small_pair_module):
    old, new = small_pair_module.datasets
    truth_records = small_pair_module.ground_truth.record_mapping(
        old.year, new.year
    )
    truth_groups = small_pair_module.ground_truth.group_mapping(
        old.year, new.year
    )
    return old, new, truth_records, truth_groups


@pytest.fixture(scope="module")
def small_pair_module():
    from repro.datagen import generate_series, GeneratorConfig

    return generate_series(
        GeneratorConfig(
            seed=7, start_year=1871, num_snapshots=2, initial_households=60
        )
    )


class TestGridSearch:
    def test_all_points_evaluated(self, workload):
        old, new, truth_records, truth_groups = workload
        result = grid_search(
            old, new, truth_records,
            grid={"delta_low": (0.45, 0.5), "remaining_threshold": (0.7, 0.8)},
            reference_groups=truth_groups,
        )
        assert len(result.points) == 4
        assert result.best.objective(result.target) == max(
            point.objective(result.target) for point in result.points
        )

    def test_invalid_combinations_skipped(self, workload):
        old, new, truth_records, _ = workload
        result = grid_search(
            old, new, truth_records,
            grid={"alpha": (0.5, 0.9), "beta": (0.5, 0.9)},
            target=RECORD_F,
        )
        # (0.9, 0.5), (0.5, 0.9) and (0.9, 0.9) violate alpha+beta <= 1.
        assert len(result.points) == 1

    def test_unknown_field_rejected(self, workload):
        old, new, truth_records, _ = workload
        with pytest.raises(ValueError):
            grid_search(old, new, truth_records, grid={"gamma": (1,)})

    def test_empty_values_rejected(self, workload):
        old, new, truth_records, _ = workload
        with pytest.raises(ValueError):
            grid_search(old, new, truth_records, grid={"alpha": ()})

    def test_unknown_target_rejected(self, workload):
        old, new, truth_records, _ = workload
        with pytest.raises(ValueError):
            grid_search(old, new, truth_records, grid={"alpha": (0.2,)},
                        target="accuracy")

    def test_target_degrades_without_group_reference(self, workload):
        old, new, truth_records, _ = workload
        result = grid_search(
            old, new, truth_records, grid={"delta_low": (0.5,)}, target=MEAN_F
        )
        assert result.target == RECORD_F

    def test_progress_callback(self, workload):
        old, new, truth_records, _ = workload
        seen = []
        grid_search(
            old, new, truth_records,
            grid={"delta_low": (0.45, 0.5)},
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]

    def test_best_config_materialises(self, workload):
        old, new, truth_records, _ = workload
        result = grid_search(
            old, new, truth_records, grid={"delta_low": (0.45, 0.5)}
        )
        config = result.best.as_config()
        assert isinstance(config, LinkageConfig)
        assert config.delta_low in (0.45, 0.5)

    def test_top_returns_sorted_prefix(self, workload):
        old, new, truth_records, _ = workload
        result = grid_search(
            old, new, truth_records,
            grid={"remaining_threshold": (0.6, 0.75, 0.9)},
        )
        top2 = result.top(2)
        assert len(top2) == 2
        assert top2[0].objective(result.target) >= top2[1].objective(
            result.target
        )


class TestGridPoint:
    def test_objectives(self):
        point = GridPoint(
            overrides=(("alpha", 0.2),),
            record=QualityResult(8, 2, 2),
            group=QualityResult(6, 4, 4),
        )
        assert point.objective(RECORD_F) == pytest.approx(0.8)
        assert point.objective(GROUP_F) == pytest.approx(0.6)
        assert point.objective(MEAN_F) == pytest.approx(0.7)
        with pytest.raises(ValueError):
            point.objective("precision")
