"""Tests for the evolution graph (Section 4.2, Table 8 machinery)."""

import pytest

from repro.evolution.graph import EvolutionGraph, group_vertex, record_vertex
from repro.evolution.patterns import (
    GroupPatterns,
    PairPatterns,
    RecordPatterns,
)


def pair_patterns(old_year, new_year, preserved_groups=(), moves=(),
                  splits=None, merges=None, preserved_records=()):
    return PairPatterns(
        old_year=old_year,
        new_year=new_year,
        records=RecordPatterns(preserved=list(preserved_records)),
        groups=GroupPatterns(
            preserved=list(preserved_groups),
            moves=list(moves),
            splits=splits or {},
            merges=merges or {},
        ),
    )


def build_three_census_graph():
    graph = EvolutionGraph()
    graph.add_snapshot(1851, ["r1"], ["g1", "g2", "g3"])
    graph.add_snapshot(1861, ["r2"], ["h1", "h2", "h3"])
    graph.add_snapshot(1871, ["r3"], ["k1", "k2"])
    graph.add_pair_patterns(
        pair_patterns(
            1851,
            1861,
            preserved_groups=[("g1", "h1"), ("g2", "h2")],
            preserved_records=[("r1", "r2")],
        )
    )
    graph.add_pair_patterns(
        pair_patterns(
            1861,
            1871,
            preserved_groups=[("h1", "k1")],
            moves=[("h3", "k2")],
            preserved_records=[("r2", "r3")],
        )
    )
    return graph


class TestConstruction:
    def test_snapshots_in_order(self):
        graph = EvolutionGraph()
        graph.add_snapshot(1851, [], [])
        with pytest.raises(ValueError):
            graph.add_snapshot(1851, [], [])
        with pytest.raises(ValueError):
            graph.add_snapshot(1841, [], [])

    def test_patterns_require_snapshots(self):
        graph = EvolutionGraph()
        graph.add_snapshot(1851, [], [])
        with pytest.raises(ValueError):
            graph.add_pair_patterns(pair_patterns(1851, 1861))

    def test_vertices_added(self):
        graph = build_three_census_graph()
        assert group_vertex(1851, "g1") in graph.vertices
        assert record_vertex(1871, "r3") in graph.vertices
        assert graph.num_group_vertices() == 8


class TestEdges:
    def test_typed_edges(self):
        graph = build_three_census_graph()
        assert len(graph.edges_of_type("preserve_G")) == 3
        assert len(graph.edges_of_type("move")) == 1
        assert len(graph.edges_of_type("preserve_R")) == 2

    def test_group_edges_exclude_record_links(self):
        graph = build_three_census_graph()
        assert len(graph.group_edges()) == 4

    def test_split_and_merge_edges(self):
        graph = EvolutionGraph()
        graph.add_snapshot(1851, [], ["g1", "g2"])
        graph.add_snapshot(1861, [], ["h1", "h2"])
        graph.add_pair_patterns(
            pair_patterns(
                1851, 1861,
                splits={"g1": ["h1", "h2"]},
                merges={"h1": ["g1", "g2"]},
            )
        )
        assert len(graph.edges_of_type("split")) == 2
        assert len(graph.edges_of_type("merge")) == 2


class TestComponents:
    def test_group_components(self):
        graph = build_three_census_graph()
        components = graph.group_components()
        largest = graph.largest_group_component()
        # g1-h1-k1 chain plus g2-h2 plus h3-k2 plus isolated g3.
        assert len(largest) == 3
        sizes = sorted(len(component) for component in components)
        assert sizes == [1, 2, 2, 3]

    def test_empty_graph(self):
        graph = EvolutionGraph()
        assert graph.group_components() == []
        assert graph.largest_group_component() == []


class TestPreserveChains:
    def test_chain_counts(self):
        graph = build_three_census_graph()
        counts = graph.preserve_chain_counts()
        # Three preserve edges in total; one 2-interval chain (g1->h1->k1).
        assert counts == {1: 3, 2: 1}

    def test_preserved_for_interval(self):
        graph = build_three_census_graph()
        assert graph.preserved_for_interval(1) == 3
        assert graph.preserved_for_interval(2) == 1
        assert graph.preserved_for_interval(3) == 0

    def test_single_snapshot_has_no_chains(self):
        graph = EvolutionGraph()
        graph.add_snapshot(1851, [], ["g1"])
        assert graph.preserve_chain_counts() == {}

    def test_ten_year_count_equals_total_preserves(self, small_series):
        from repro.evolution.analysis import (
            analyse_series,
            ground_truth_pair_linker,
        )

        analysis = analyse_series(
            small_series.datasets,
            ground_truth_pair_linker(small_series.ground_truth),
        )
        total_preserves = sum(
            patterns.groups.counts()["preserve_G"]
            for patterns in analysis.pair_patterns
        )
        table8 = analysis.preserve_interval_table()
        assert table8.get(10, 0) == total_preserves

    def test_chain_counts_monotone(self, small_series):
        from repro.evolution.analysis import (
            analyse_series,
            ground_truth_pair_linker,
        )

        analysis = analyse_series(
            small_series.datasets,
            ground_truth_pair_linker(small_series.ground_truth),
        )
        table8 = analysis.preserve_interval_table()
        values = [table8[key] for key in sorted(table8)]
        assert values == sorted(values, reverse=True)


class TestPatternCountsByPair:
    def test_counts_partitioned_by_year(self):
        graph = build_three_census_graph()
        counts = graph.pattern_counts_by_pair()
        assert counts[(1851, 1861)]["preserve_G"] == 2
        assert counts[(1861, 1871)]["preserve_G"] == 1
        assert counts[(1861, 1871)]["move"] == 1
