"""Snapshot-arrival matrix for incremental re-linkage.

Every scenario plays one arrival sequence against a warm series-state
store and asserts two things at once:

* **equivalence** — the incremental analysis ledger hash (decisions
  only: per-pair mappings and evolution patterns, see
  :func:`repro.checkpoint.analysis_ledger`) equals a from-scratch
  analysis of the same series, and
* **economy** — the series counters prove the expected work was
  *skipped*: pairs untouched by the arrival are reused from the store,
  and a no-op re-run re-scores zero record pairs.

The matrix: append one snapshot, append many, re-run unchanged, revise
a middle snapshot, revise then append.  One scenario repeats with two
scoring workers to pin worker-independence of the incremental path.
"""

import pytest

from repro.checkpoint import analysis_ledger_hash
from repro.core.config import LinkageConfig
from repro.datagen import revise_middle_record
from repro.datagen.generator import GeneratorConfig, generate_series
from repro.evolution.analysis import analyse_series
from repro.instrumentation import (
    PAIRS_RESCORED,
    SERIES_KEYS_DIRTY,
    SERIES_KEYS_TOTAL,
    SERIES_PAIRS_RELINKED,
    SERIES_PAIRS_REUSED,
    SERIES_SEED_ENTRIES,
)


@pytest.fixture(scope="module")
def series():
    """Four snapshots (1871-1901): three adjacent pairs to settle."""
    return generate_series(
        GeneratorConfig(seed=7, num_snapshots=4, initial_households=24)
    ).datasets


def scratch_hash(datasets, config=None):
    return analysis_ledger_hash(
        analyse_series(datasets, config=config or LinkageConfig())
    )


def run_warm(store, datasets, config=None):
    """One incremental run against ``store``; returns (hash, profile)."""
    analysis = analyse_series(
        datasets, config=config or LinkageConfig(), series_state=str(store)
    )
    assert analysis.profile is not None
    return analysis_ledger_hash(analysis), analysis.profile


class TestArrivalMatrix:
    def test_noop_rerun_reuses_everything(self, series, tmp_path):
        """Re-running an unchanged series must touch nothing: every pair
        reused, zero record pairs re-scored, zero cache entries seeded."""
        run_warm(tmp_path, series)
        incremental, profile = run_warm(tmp_path, series)
        assert incremental == scratch_hash(series)
        assert profile.value(SERIES_PAIRS_REUSED) == 3
        assert profile.value(SERIES_PAIRS_RELINKED) == 0
        assert profile.value(PAIRS_RESCORED) == 0
        assert profile.value(SERIES_SEED_ENTRIES) == 0
        assert profile.value(SERIES_KEYS_DIRTY) == 0
        assert profile.value(SERIES_KEYS_TOTAL) > 0

    def test_append_one_relinks_only_the_new_pair(self, series, tmp_path):
        run_warm(tmp_path, series[:3])
        incremental, profile = run_warm(tmp_path, series)
        assert incremental == scratch_hash(series)
        assert profile.value(SERIES_PAIRS_REUSED) == 2
        assert profile.value(SERIES_PAIRS_RELINKED) == 1

    def test_append_many_relinks_only_the_new_pairs(self, series, tmp_path):
        run_warm(tmp_path, series[:2])
        incremental, profile = run_warm(tmp_path, series)
        assert incremental == scratch_hash(series)
        assert profile.value(SERIES_PAIRS_REUSED) == 1
        assert profile.value(SERIES_PAIRS_RELINKED) == 2

    def test_revise_middle_relinks_adjacent_pairs(self, series, tmp_path):
        """Editing one record in snapshot 2 dirties exactly the two
        pairs that see it; the untouched first pair is reused and only
        the edited record's blocking keys are recomputed."""
        run_warm(tmp_path, series)
        revised = list(series)
        revised[2] = revise_middle_record(series[2])
        incremental, profile = run_warm(tmp_path, revised)
        assert incremental == scratch_hash(revised)
        # The edit may or may not flip a link decision (the ledger is
        # decisions-only); the dirty-key counters below prove the store
        # noticed it and re-linked exactly the two adjacent pairs.
        assert profile.value(SERIES_PAIRS_REUSED) == 1
        assert profile.value(SERIES_PAIRS_RELINKED) == 2
        dirty = profile.value(SERIES_KEYS_DIRTY)
        assert 0 < dirty < profile.value(SERIES_KEYS_TOTAL)
        # Clean similarity knowledge was carried over, so the re-link
        # re-scored strictly less than the full two pairs from scratch.
        assert profile.value(SERIES_SEED_ENTRIES) > 0

    def test_revise_then_append(self, series, tmp_path):
        """Revise the first snapshot while the fourth arrives: the only
        clean stored pair (2nd-3rd snapshots) is reused, everything the
        edit or arrival touched is re-linked."""
        run_warm(tmp_path, series[:3])
        revised = list(series)
        revised[0] = revise_middle_record(series[0])
        incremental, profile = run_warm(tmp_path, revised)
        assert incremental == scratch_hash(revised)
        assert profile.value(SERIES_PAIRS_REUSED) == 1
        assert profile.value(SERIES_PAIRS_RELINKED) == 2

    def test_noop_with_two_workers_matches_serial(self, series, tmp_path):
        """Worker-independence of the incremental path: a 2-worker warm
        run and a 2-worker no-op re-run pin the same decisions as the
        serial from-scratch analysis, and the re-run still skips all
        scoring."""
        config = LinkageConfig(
            n_workers=2, worker_chunk_size=64, group_worker_chunk_size=4
        )
        run_warm(tmp_path, series, config=config)
        incremental, profile = run_warm(tmp_path, series, config=config)
        assert incremental == scratch_hash(series)
        assert profile.value(PAIRS_RESCORED) == 0
        assert profile.value(SERIES_PAIRS_REUSED) == 3

    def test_rescore_economy_on_revision(self, series, tmp_path):
        """The cache seed does real work: a warm revise arrival scores
        strictly fewer record pairs over the two dirtied snapshot pairs
        than a cold (seedless) incremental run over those same pairs."""
        revised = list(series)
        revised[2] = revise_middle_record(series[2])

        run_warm(tmp_path, series)
        warm_hash, warm_profile = run_warm(tmp_path, revised)
        assert warm_hash == scratch_hash(revised)

        cold_store = tmp_path / "cold"
        _, cold_profile = run_warm(cold_store, revised[1:4])
        warm_rescored = warm_profile.value(PAIRS_RESCORED)
        cold_rescored = cold_profile.value(PAIRS_RESCORED)
        assert 0 < warm_rescored < cold_rescored
