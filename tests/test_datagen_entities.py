"""Tests for the latent world model (entities and kinship)."""

import pytest

import repro.model.roles as R
from repro.datagen.entities import World


@pytest.fixture
def family_world():
    """A three-generation household plus one lodger."""
    world = World()
    grandfather = world.new_person(
        sex="m", birth_year=1800, first_name="john", surname="kay"
    )
    head = world.new_person(
        sex="m", birth_year=1825, first_name="james", surname="kay",
        father_id=grandfather.entity_id,
    )
    wife = world.new_person(
        sex="f", birth_year=1828, first_name="mary", surname="kay",
        spouse_id=head.entity_id,
    )
    head.spouse_id = wife.entity_id
    son = world.new_person(
        sex="m", birth_year=1850, first_name="tom", surname="kay",
        father_id=head.entity_id, mother_id=wife.entity_id,
    )
    daughter = world.new_person(
        sex="f", birth_year=1852, first_name="ann", surname="kay",
        father_id=head.entity_id, mother_id=wife.entity_id,
    )
    grandchild = world.new_person(
        sex="f", birth_year=1870, first_name="jane", surname="kay",
        father_id=son.entity_id,
    )
    lodger = world.new_person(
        sex="m", birth_year=1840, first_name="amos", surname="holt"
    )
    household = world.new_household("1 bank st", head.entity_id)
    for person in (grandfather, wife, son, daughter, grandchild, lodger):
        world.move_person(person.entity_id, household.entity_id)
    return world, household, {
        "grandfather": grandfather, "head": head, "wife": wife,
        "son": son, "daughter": daughter, "grandchild": grandchild,
        "lodger": lodger,
    }


class TestRoles:
    def test_head(self, family_world):
        world, household, people = family_world
        assert world.role_relative_to_head(
            people["head"].entity_id, household.head_id
        ) == R.HEAD

    def test_wife(self, family_world):
        world, household, people = family_world
        assert world.role_relative_to_head(
            people["wife"].entity_id, household.head_id
        ) == R.WIFE

    def test_children(self, family_world):
        world, household, people = family_world
        assert world.role_relative_to_head(
            people["son"].entity_id, household.head_id
        ) == R.SON
        assert world.role_relative_to_head(
            people["daughter"].entity_id, household.head_id
        ) == R.DAUGHTER

    def test_parent(self, family_world):
        world, household, people = family_world
        assert world.role_relative_to_head(
            people["grandfather"].entity_id, household.head_id
        ) == R.FATHER

    def test_grandchild(self, family_world):
        world, household, people = family_world
        assert world.role_relative_to_head(
            people["grandchild"].entity_id, household.head_id
        ) == R.GRANDDAUGHTER

    def test_lodger(self, family_world):
        world, household, people = family_world
        assert world.role_relative_to_head(
            people["lodger"].entity_id, household.head_id
        ) == R.LODGER

    def test_servant_flag(self, family_world):
        world, household, people = family_world
        people["lodger"].is_servant = True
        assert world.role_relative_to_head(
            people["lodger"].entity_id, household.head_id
        ) == R.SERVANT

    def test_role_after_rehead(self, family_world):
        """When the son becomes head, his sister's role changes to
        sister and his child's to daughter."""
        world, household, people = family_world
        household.head_id = people["son"].entity_id
        assert world.role_relative_to_head(
            people["daughter"].entity_id, household.head_id
        ) == R.SISTER
        assert world.role_relative_to_head(
            people["grandchild"].entity_id, household.head_id
        ) == R.DAUGHTER
        assert world.role_relative_to_head(
            people["head"].entity_id, household.head_id
        ) == R.FATHER


class TestKinship:
    def test_children_of(self, family_world):
        world, _, people = family_world
        children = world.children_of(people["head"].entity_id)
        assert {child.first_name for child in children} == {"tom", "ann"}

    def test_siblings(self, family_world):
        world, _, people = family_world
        assert world.are_siblings(
            people["son"].entity_id, people["daughter"].entity_id
        )
        assert not world.are_siblings(
            people["son"].entity_id, people["lodger"].entity_id
        )

    def test_grandchild(self, family_world):
        world, _, people = family_world
        assert world.is_grandchild_of(
            people["grandchild"].entity_id, people["head"].entity_id
        )
        assert not world.is_grandchild_of(
            people["son"].entity_id, people["head"].entity_id
        )


class TestMembership:
    def test_move_person(self, family_world):
        world, household, people = family_world
        other = world.new_household("2 mill st", world.new_person(
            sex="m", birth_year=1830, first_name="eli", surname="lord"
        ).entity_id)
        world.move_person(people["lodger"].entity_id, other.entity_id)
        assert people["lodger"].entity_id not in household.member_ids
        assert people["lodger"].entity_id in other.member_ids
        assert world.household_of[people["lodger"].entity_id] == other.entity_id

    def test_move_to_same_household_is_noop(self, family_world):
        world, household, people = family_world
        before = set(household.member_ids)
        world.move_person(people["son"].entity_id, household.entity_id)
        assert set(household.member_ids) == before

    def test_detach_and_drop(self, family_world):
        world, _, people = family_world
        loner = world.new_person(
            sex="f", birth_year=1845, first_name="ada", surname="stott"
        )
        home = world.new_household("3 oak st", loner.entity_id)
        assert world.detach_person(loner.entity_id) == home.entity_id
        assert world.drop_if_empty(home.entity_id)
        assert home.entity_id not in world.households

    def test_drop_keeps_populated_household(self, family_world):
        world, household, _ = family_world
        assert not world.drop_if_empty(household.entity_id)

    def test_members_sorted(self, family_world):
        world, household, _ = family_world
        members = world.members_of(household.entity_id)
        ids = [person.entity_id for person in members]
        assert ids == sorted(ids)


class TestObservability:
    def test_dead_person_unobservable(self, family_world):
        world, _, people = family_world
        people["lodger"].alive = False
        assert not people["lodger"].observable
        assert people["lodger"] not in world.observable_persons()

    def test_emigrated_household_vanishes(self, family_world):
        world, household, people = family_world
        for person in people.values():
            person.present = False
        assert household not in world.observable_households()

    def test_age_in(self, family_world):
        _, _, people = family_world
        assert people["head"].age_in(1875) == 50
        assert people["head"].age_in(1800) == 0  # clamped, never negative
