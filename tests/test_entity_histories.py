"""Tests for entity-history construction from pairwise mappings."""

import pytest

from repro.core.config import LinkageConfig
from repro.evolution.entities import (
    EntityHistory,
    build_entity_histories,
    history_accuracy,
)
from repro.evolution.multihop import direct_mapping
from repro.model.dataset import CensusDataset
from repro.model.mappings import RecordMapping
from repro.model.records import PersonRecord
import repro.model.roles as R


def tiny_dataset(year, ids):
    return CensusDataset.from_records(
        year,
        [
            PersonRecord(record_id, f"g{year}", "john", "kay", "m", 30,
                         role=R.HEAD if index == 0 else R.SON)
            for index, record_id in enumerate(ids)
        ],
    )


@pytest.fixture
def tiny_series():
    d1 = tiny_dataset(1851, ["a1", "a2", "a3"])
    d2 = tiny_dataset(1861, ["b1", "b2"])
    d3 = tiny_dataset(1871, ["c1", "c2"])
    m12 = RecordMapping([("a1", "b1"), ("a2", "b2")])
    m23 = RecordMapping([("b1", "c1")])
    return [d1, d2, d3], [m12, m23]


class TestBuild:
    def test_history_chaining(self, tiny_series):
        datasets, mappings = tiny_series
        histories = build_entity_histories(datasets, mappings)
        long_history = histories.history_of(1851, "a1")
        assert long_history.appearances == [
            (1851, "a1"), (1861, "b1"), (1871, "c1"),
        ]
        assert long_history.span_years == 20
        assert long_history.is_continuous()

    def test_singletons_for_unlinked(self, tiny_series):
        datasets, mappings = tiny_series
        histories = build_entity_histories(datasets, mappings)
        lone = histories.history_of(1871, "c2")
        assert lone.num_appearances == 1
        assert lone.span_years == 0

    def test_every_record_in_exactly_one_history(self, tiny_series):
        datasets, mappings = tiny_series
        histories = build_entity_histories(datasets, mappings)
        total_appearances = sum(
            history.num_appearances for history in histories.histories
        )
        total_records = sum(len(dataset) for dataset in datasets)
        assert total_appearances == total_records

    def test_mapping_count_validated(self, tiny_series):
        datasets, mappings = tiny_series
        with pytest.raises(ValueError):
            build_entity_histories(datasets, mappings[:1])

    def test_span_distribution(self, tiny_series):
        datasets, mappings = tiny_series
        histories = build_entity_histories(datasets, mappings)
        distribution = histories.span_distribution()
        assert distribution[20] == 1  # a1-b1-c1
        assert distribution[10] == 1  # a2-b2
        assert distribution[0] == 2  # a3 and c2

    def test_record_in_year(self, tiny_series):
        datasets, mappings = tiny_series
        histories = build_entity_histories(datasets, mappings)
        history = histories.history_of(1851, "a1")
        assert history.record_in(1861) == "b1"
        assert history.record_in(1881) is None


class TestContinuity:
    def test_gap_detected(self):
        history = EntityHistory("e1", [(1851, "a"), (1871, "c")])
        assert not history.is_continuous()

    def test_single_appearance_is_continuous(self):
        assert EntityHistory("e1", [(1851, "a")]).is_continuous()


class TestOnLinkedSeries:
    def test_histories_match_ground_truth(self, small_series):
        datasets = small_series.datasets
        mappings = [
            direct_mapping(old, new, LinkageConfig())
            for old, new in zip(datasets, datasets[1:])
        ]
        histories = build_entity_histories(datasets, mappings)
        accuracy = history_accuracy(
            histories, small_series.ground_truth, small_series.years
        )
        assert accuracy > 0.9

    def test_ground_truth_histories_are_perfect(self, small_series):
        datasets = small_series.datasets
        truth = small_series.ground_truth
        mappings = [
            truth.record_mapping(old.year, new.year)
            for old, new in zip(datasets, datasets[1:])
        ]
        histories = build_entity_histories(datasets, mappings)
        assert history_accuracy(histories, truth, small_series.years) == 1.0
