"""Tests for the error-analysis (FN/FP categorisation) utilities."""

import pytest

import repro.model.roles as R
from repro.evaluation.errors import (
    FN_MISSING_VALUES,
    FN_NAME_NOISE,
    FN_STOLEN,
    FN_SURNAME_CHANGED,
    FP_AGE_IMPLAUSIBLE,
    FP_NAMESAKE,
    analyse_errors,
    categorise_false_negative,
    categorise_false_positive,
)
from repro.model.dataset import CensusDataset
from repro.model.mappings import RecordMapping
from repro.model.records import PersonRecord


def record(record_id, household, first, last, age=30, sex="f"):
    return PersonRecord(record_id, household, first, last, sex, age, role=R.HEAD)


@pytest.fixture
def datasets():
    old = CensusDataset.from_records(
        1871,
        [
            record("o1", "g1", "alice", "ashworth", age=18),
            record("o2", "g2", "john", "kay", age=40, sex="m"),
            record("o3", "g3", "mary", "holt", age=10),
            record("o4", "g4", None, "lord", age=20),
        ],
    )
    new = CensusDataset.from_records(
        1881,
        [
            record("n1", "h1", "alice", "smith", age=28),
            record("n2", "h2", "jhon", "kay", age=50, sex="m"),
            record("n3", "h3", "mary", "holt", age=20),
            record("n4", "h4", None, "lord", age=30),
            record("n5", "h5", "mary", "holt", age=12),
        ],
    )
    return old, new


class TestFalseNegatives:
    def test_surname_changed(self, datasets):
        old, new = datasets
        category = categorise_false_negative(
            old, new, RecordMapping(), "o1", "n1"
        )
        assert category == FN_SURNAME_CHANGED

    def test_name_noise(self, datasets):
        old, new = datasets
        category = categorise_false_negative(
            old, new, RecordMapping(), "o2", "n2"
        )
        assert category == FN_NAME_NOISE

    def test_missing_values(self, datasets):
        old, new = datasets
        category = categorise_false_negative(
            old, new, RecordMapping(), "o4", "n4"
        )
        assert category == FN_MISSING_VALUES

    def test_stolen_link(self, datasets):
        old, new = datasets
        predicted = RecordMapping([("o3", "n5")])
        category = categorise_false_negative(old, new, predicted, "o3", "n3")
        assert category == FN_STOLEN


class TestFalsePositives:
    def test_age_implausible(self, datasets):
        old, new = datasets
        category = categorise_false_positive(old, new, "o3", "n5", 10)
        assert category == FP_AGE_IMPLAUSIBLE

    def test_namesake(self, datasets):
        old, new = datasets
        category = categorise_false_positive(old, new, "o3", "n3", 10)
        assert category == FP_NAMESAKE


class TestAnalyseErrors:
    def test_report_counts_and_examples(self, datasets):
        old, new = datasets
        reference = RecordMapping(
            [("o1", "n1"), ("o2", "n2"), ("o3", "n3"), ("o4", "n4")]
        )
        predicted = RecordMapping([("o2", "n2"), ("o3", "n5")])
        report = analyse_errors(old, new, predicted, reference)
        assert sum(report.false_negatives.values()) == 3
        assert sum(report.false_positives.values()) == 1
        assert report.false_negatives[FN_SURNAME_CHANGED] == 1
        assert report.false_positives[FP_AGE_IMPLAUSIBLE] == 1
        assert report.fn_examples[FN_SURNAME_CHANGED] == [("o1", "n1")]
        text = report.summary()
        assert "False negatives" in text and FN_SURNAME_CHANGED in text

    def test_perfect_prediction_empty_report(self, datasets):
        old, new = datasets
        reference = RecordMapping([("o1", "n1")])
        report = analyse_errors(old, new, reference.copy(), reference)
        assert not report.false_negatives
        assert not report.false_positives

    def test_on_synthetic_pair(self, small_pair):
        from repro.core import LinkageConfig, link_datasets

        old, new = small_pair.datasets
        truth = small_pair.ground_truth.record_mapping(old.year, new.year)
        result = link_datasets(old, new, LinkageConfig())
        report = analyse_errors(old, new, result.record_mapping, truth)
        # The dominant FN class on this data is surname change (brides).
        assert report.false_negatives
        assert (
            report.false_negatives[FN_SURNAME_CHANGED]
            >= report.false_negatives.get(FN_NAME_NOISE, 0) // 2
        )
