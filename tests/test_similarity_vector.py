"""Unit tests for the weighted multi-attribute similarity function."""

import pytest

import repro.model.roles as R
from repro.model.records import PersonRecord
from repro.similarity.vector import (
    MISSING_IGNORE,
    MISSING_NEUTRAL,
    MISSING_ZERO,
    AttributeComparator,
    SimilarityFunction,
    TemporalAgeComparator,
    build_similarity_function,
    resolve_comparator,
)


def record(record_id="r1", **overrides):
    fields = dict(
        household_id="h1",
        first_name="john",
        surname="ashworth",
        sex="m",
        age=39,
        occupation="weaver",
        address="bacup rd",
        role=R.HEAD,
    )
    fields.update(overrides)
    return PersonRecord(record_id, **fields)


NAME_WEIGHTS = [("first_name", "qgram", 0.5), ("surname", "qgram", 0.5)]


class TestConstruction:
    def test_weights_normalised(self):
        func = build_similarity_function(
            [("first_name", "qgram", 2.0), ("surname", "qgram", 2.0)], 0.5
        )
        assert func.weights == (0.5, 0.5)

    def test_empty_comparators_rejected(self):
        with pytest.raises(ValueError):
            SimilarityFunction([], 0.5)

    def test_zero_total_weight_rejected(self):
        comparator = AttributeComparator(
            "first_name", resolve_comparator("exact"), 0.0
        )
        with pytest.raises(ValueError):
            SimilarityFunction([comparator], 0.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            AttributeComparator("first_name", resolve_comparator("exact"), -1.0)

    def test_unknown_comparator_name(self):
        with pytest.raises(ValueError):
            resolve_comparator("embedding")

    def test_unknown_missing_policy(self):
        with pytest.raises(ValueError):
            build_similarity_function(NAME_WEIGHTS, 0.5, missing_policy="drop")

    def test_attributes_property(self):
        func = build_similarity_function(NAME_WEIGHTS, 0.5)
        assert func.attributes == ("first_name", "surname")


class TestScoring:
    def test_identical_records_score_one(self):
        func = build_similarity_function(NAME_WEIGHTS, 0.5)
        assert func.agg_sim(record(), record("r2")) == pytest.approx(1.0)

    def test_disjoint_names_score_zero(self):
        func = build_similarity_function(NAME_WEIGHTS, 0.5)
        other = record("r2", first_name="zz", surname="qq")
        assert func.agg_sim(record(), other) == pytest.approx(0.0)

    def test_weighted_sum(self):
        func = build_similarity_function(
            [("first_name", "exact", 0.3), ("surname", "exact", 0.7)], 0.5
        )
        other = record("r2", first_name="mary")
        assert func.agg_sim(record(), other) == pytest.approx(0.7)

    def test_matches_respects_threshold(self):
        func = build_similarity_function(NAME_WEIGHTS, 0.9)
        near = record("r2", surname="ashwort")
        assert func.agg_sim(record(), near) < 0.99
        assert not func.matches(record(), record("r2", surname="zzz"))
        assert func.matches(record(), record("r2"))

    def test_similarity_vector_marks_missing(self):
        func = build_similarity_function(
            NAME_WEIGHTS + [("occupation", "qgram", 0.5)], 0.5
        )
        other = record("r2", occupation=None)
        vector = func.similarity_vector(record(), other)
        assert vector[0] == pytest.approx(1.0)
        assert vector[2] is None

    def test_blank_string_treated_as_missing(self):
        func = build_similarity_function([("occupation", "qgram", 1.0)], 0.5)
        other = record("r2", occupation="  ")
        assert func.agg_sim(record(), other) == 0.0


class TestMissingPolicies:
    def setup_method(self):
        self.weights = [("first_name", "exact", 0.5), ("occupation", "exact", 0.5)]
        self.left = record()
        self.right = record("r2", occupation=None)

    def test_missing_zero(self):
        func = build_similarity_function(self.weights, 0.5, MISSING_ZERO)
        assert func.agg_sim(self.left, self.right) == pytest.approx(0.5)

    def test_missing_neutral(self):
        func = build_similarity_function(self.weights, 0.5, MISSING_NEUTRAL)
        assert func.agg_sim(self.left, self.right) == pytest.approx(0.75)

    def test_missing_ignore_renormalises(self):
        func = build_similarity_function(self.weights, 0.5, MISSING_IGNORE)
        assert func.agg_sim(self.left, self.right) == pytest.approx(1.0)

    def test_missing_ignore_all_missing(self):
        func = build_similarity_function([("occupation", "exact", 1.0)], 0.5,
                                         MISSING_IGNORE)
        assert func.agg_sim(self.left, self.right) == 0.0


class TestVariants:
    def test_with_threshold_copies(self):
        func = build_similarity_function(NAME_WEIGHTS, 0.9)
        relaxed = func.with_threshold(0.5)
        assert relaxed.threshold == 0.5
        assert func.threshold == 0.9
        assert relaxed.attributes == func.attributes

    def test_repr_mentions_threshold(self):
        func = build_similarity_function(NAME_WEIGHTS, 0.75)
        assert "0.75" in repr(func)


class TestTemporalAgeComparator:
    def test_exact_gap(self):
        comparator = TemporalAgeComparator(year_gap=10)
        assert comparator(30, 40) == 1.0

    def test_missing_age(self):
        comparator = TemporalAgeComparator(year_gap=10)
        assert comparator(None, 40) == 0.0
        assert comparator("30", 40) == 0.0  # non-int treated as missing

    def test_usable_inside_similarity_function(self):
        comparator = AttributeComparator("age", TemporalAgeComparator(10), 1.0)
        func = SimilarityFunction([comparator], 0.5)
        old = record()
        new = record("r2", age=49)
        assert func.agg_sim(old, new) == pytest.approx(1.0)
