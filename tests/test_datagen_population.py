"""Tests for the population simulator (world dynamics)."""

import pytest

import repro.model.roles as R
from repro.datagen.entities import World
from repro.datagen.population import PopulationSimulator, SimulationParams


@pytest.fixture(scope="module")
def simulator():
    sim = PopulationSimulator(seed=11, initial_households=60, start_year=1851)
    return sim


@pytest.fixture(scope="module")
def stepped():
    sim = PopulationSimulator(seed=12, initial_households=60, start_year=1851)
    sim.step_decade()
    return sim


class TestBootstrap:
    def test_household_count(self, simulator):
        assert len(simulator.world.observable_households()) == 60

    def test_everyone_in_exactly_one_household(self, simulator):
        seen = set()
        for household in simulator.world.observable_households():
            for person_id in household.member_ids:
                assert person_id not in seen
                seen.add(person_id)

    def test_heads_exist_and_are_members(self, simulator):
        for household in simulator.world.observable_households():
            assert household.head_id in household.member_ids

    def test_spouse_links_symmetric(self, simulator):
        for person in simulator.world.observable_persons():
            if person.spouse_id is not None:
                spouse = simulator.world.persons[person.spouse_id]
                assert spouse.spouse_id == person.entity_id

    def test_children_have_plausible_parent_ages(self, simulator):
        world = simulator.world
        for person in world.observable_persons():
            for parent_id in (person.father_id, person.mother_id):
                if parent_id and parent_id in world.persons:
                    parent = world.persons[parent_id]
                    assert parent.birth_year < person.birth_year

    def test_roles_derivable_for_all_members(self, simulator):
        world = simulator.world
        for household in world.observable_households():
            for person_id in household.member_ids:
                role = world.role_relative_to_head(person_id, household.head_id)
                assert role in R.ALL_ROLES


class TestDecadeStep:
    def test_year_advances(self, stepped):
        assert stepped.year == 1861

    def test_population_grows(self, stepped):
        fresh = PopulationSimulator(seed=12, initial_households=60)
        before = len(fresh.world.observable_persons())
        after = len(stepped.world.observable_persons())
        assert after > before * 0.9  # grows or roughly holds

    def test_some_deaths_happened(self, stepped):
        dead = [p for p in stepped.world.persons.values() if not p.alive]
        assert dead

    def test_some_emigration_happened(self, stepped):
        gone = [
            p for p in stepped.world.persons.values()
            if p.alive and not p.present
        ]
        assert gone

    def test_some_marriages_happened(self, stepped):
        brides = [
            p
            for p in stepped.world.persons.values()
            if p.sex == "f" and p.spouse_id is not None
        ]
        assert brides

    def test_brides_took_husband_surname(self, stepped):
        world = stepped.world
        for person in world.observable_persons():
            if person.sex == "f" and person.spouse_id:
                spouse = world.persons.get(person.spouse_id)
                if spouse is not None:
                    assert person.surname == spouse.surname

    def test_households_remain_consistent(self, stepped):
        world = stepped.world
        for person_id, household_id in world.household_of.items():
            household = world.households.get(household_id)
            assert household is not None
            assert person_id in household.member_ids

    def test_observable_members_only_in_households(self, stepped):
        world = stepped.world
        for person in world.observable_persons():
            assert person.entity_id in world.household_of

    def test_dead_people_not_in_households(self, stepped):
        world = stepped.world
        for person in world.persons.values():
            if not person.alive:
                assert person.entity_id not in world.household_of

    def test_heads_observable_after_repair(self, stepped):
        world = stepped.world
        for household in world.observable_households():
            head = world.persons[household.head_id]
            assert head.observable

    def test_determinism(self):
        first = PopulationSimulator(seed=31, initial_households=40)
        second = PopulationSimulator(seed=31, initial_households=40)
        first.step_decade()
        second.step_decade()
        assert sorted(first.world.household_of) == sorted(second.world.household_of)
        assert {
            p.entity_id: (p.surname, p.alive, p.present)
            for p in first.world.persons.values()
        } == {
            p.entity_id: (p.surname, p.alive, p.present)
            for p in second.world.persons.values()
        }


class TestParams:
    def test_mortality_bands(self):
        params = SimulationParams()
        assert params.mortality(80) > params.mortality(30)
        assert params.mortality(500) == 1.0

    def test_marriage_bands(self):
        params = SimulationParams()
        assert params.marriage_probability(22) > params.marriage_probability(60)

    def test_multi_decade_run_stays_consistent(self):
        sim = PopulationSimulator(seed=21, initial_households=30)
        for _ in range(4):
            sim.step_decade()
        world = sim.world
        for household in world.observable_households():
            assert household.head_id in household.member_ids
            for person_id in household.member_ids:
                role = world.role_relative_to_head(person_id, household.head_id)
                assert role in R.ALL_ROLES
