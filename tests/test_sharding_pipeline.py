"""Tests for the sharded out-of-core linkage driver
(:mod:`repro.sharding.planner` / :mod:`repro.sharding.pipeline`).

The identity contract under test: a sharded run makes **exactly** the
decisions of the in-RAM run — same mappings, same per-round ledgers
(:func:`repro.checkpoint.decision_ledger_hash`) — for any shard count,
any worker count, either record-source backing, and across any
mid-round crash/resume boundary.
"""

import dataclasses
import shutil

import pytest

from repro.blocking import RegionBlocker, StandardBlocker
from repro.checkpoint import CheckpointMismatch, decision_ledger_hash
from repro.checkpoint.shard import ShardStateStore
from repro.cli import main
from repro.core.config import LinkageConfig
from repro.core.pipeline import link_datasets
from repro.datagen import generate_pair
from repro.datagen.country import CountryConfig, generate_country
from repro.sharding import (
    ShardStore,
    ShardedRecordSource,
    link_datasets_sharded,
    plan_shards,
)
from repro.validation.differential import sharded_vs_unsharded


@pytest.fixture(scope="module")
def town_pair():
    series = generate_pair(seed=21, initial_households=40)
    return series.successive_pairs()[0]


@pytest.fixture(scope="module")
def country_pair():
    country = generate_country(
        CountryConfig(seed=13, regions=3, households_per_region=18)
    )
    return country.successive_pairs()[0]


class TestPlanner:
    def test_partition_is_exact(self, town_pair):
        old, new = town_pair
        plan = plan_shards(
            old.iter_records(), new.iter_records(), StandardBlocker(), 4
        )
        old_ids = [i for shard in plan.shards for i in shard.old_ids]
        new_ids = [i for shard in plan.shards for i in shard.new_ids]
        assert sorted(old_ids) == sorted(old.record_ids)
        assert sorted(new_ids) == sorted(new.record_ids)
        assert len(set(old_ids)) == len(old_ids)
        assert len(set(new_ids)) == len(new_ids)

    def test_candidate_pairs_never_cross_shards(self, town_pair):
        old, new = town_pair
        blocker = StandardBlocker()
        plan = plan_shards(
            old.iter_records(), new.iter_records(), blocker, 5
        )
        shard_of = {}
        for shard in plan.shards:
            for record_id in shard.old_ids:
                shard_of[("o", record_id)] = shard.index
            for record_id in shard.new_ids:
                shard_of[("n", record_id)] = shard.index
        pairs = blocker.candidate_pairs(
            list(old.iter_records()), list(new.iter_records())
        )
        for old_id, new_id in pairs:
            assert shard_of[("o", old_id)] == shard_of[("n", new_id)]

    def test_households_never_cross_shards(self, town_pair):
        old, new = town_pair
        plan = plan_shards(
            old.iter_records(), new.iter_records(), StandardBlocker(), 5
        )
        for dataset, ids_of in (
            (old, lambda s: s.old_ids), (new, lambda s: s.new_ids)
        ):
            household_shard = {}
            for shard in plan.shards:
                for record_id in ids_of(shard):
                    household = dataset.records[record_id].household_id
                    assert household_shard.setdefault(
                        household, shard.index
                    ) == shard.index

    def test_region_blocking_shards_by_region(self, country_pair):
        old, new = country_pair
        plan = plan_shards(
            old.iter_records(), new.iter_records(), RegionBlocker(), 3
        )
        # Region blocking makes regions independent, so no shard may mix
        # records whose candidate pairs could interact across regions —
        # and with 3 regions over 3 shards each shard holds whole regions.
        for shard in plan.shards:
            assert shard.old_ids or shard.new_ids

    def test_fingerprint_tracks_assignment(self, town_pair):
        old, new = town_pair
        plan_a = plan_shards(
            old.iter_records(), new.iter_records(), StandardBlocker(), 4
        )
        plan_b = plan_shards(
            old.iter_records(), new.iter_records(), StandardBlocker(), 4
        )
        plan_c = plan_shards(
            old.iter_records(), new.iter_records(), StandardBlocker(), 2
        )
        assert plan_a.fingerprint() == plan_b.fingerprint()
        assert plan_a.fingerprint() != plan_c.fingerprint()

    def test_describe_rows(self, town_pair):
        old, new = town_pair
        plan = plan_shards(
            old.iter_records(), new.iter_records(), StandardBlocker(), 2
        )
        rows = plan.describe()
        assert len(rows) == 2
        assert {"shard", "old_records", "new_records", "components",
                "cost"} <= set(rows[0])

    def test_unsupported_blocker_rejected(self, town_pair):
        old, new = town_pair
        config = LinkageConfig(blocking="standard+qgram")
        with pytest.raises(TypeError, match="partition"):
            plan_shards(
                old.iter_records(), new.iter_records(),
                config.build_blocker(), 2,
            )


class TestDecisionIdentity:
    def test_differential_suite(self, town_pair):
        old, new = town_pair
        outcomes = sharded_vs_unsharded(
            old, new, shards=(1, 4), workers=(1, 2)
        )
        assert [outcome.ok for outcome in outcomes] == [True] * 4

    def test_region_blocked_country(self, country_pair):
        old, new = country_pair
        config = LinkageConfig(blocking="region")
        base = link_datasets(old, new, config)
        sharded = link_datasets(
            old, new, dataclasses.replace(config, shards=3)
        )
        assert decision_ledger_hash(sharded) == decision_ledger_hash(base)

    def test_store_backed_source(self, tmp_path, country_pair):
        old, new = country_pair
        store = ShardStore(tmp_path / "store")
        store.write_datasets([old, new])
        config = LinkageConfig(blocking="region", shards=3)
        base = link_datasets(
            old, new, dataclasses.replace(config, shards=0)
        )
        result = link_datasets_sharded(
            ShardedRecordSource.from_store(store, old.year),
            ShardedRecordSource.from_store(store, new.year),
            config,
        )
        assert decision_ledger_hash(result) == decision_ledger_hash(base)

    def test_validation_inline(self, town_pair):
        old, new = town_pair
        result = link_datasets(
            old, new, LinkageConfig(shards=3, validate=True)
        )
        assert result.provenance is not None
        assert len(result.provenance) == result.num_record_links

    def test_more_shards_than_components_ok(self, town_pair):
        old, new = town_pair
        base = link_datasets(old, new, LinkageConfig())
        result = link_datasets(old, new, LinkageConfig(shards=500))
        assert decision_ledger_hash(result) == decision_ledger_hash(base)

    def test_cache_seed_and_keep_cache_rejected(self, town_pair):
        old, new = town_pair
        with pytest.raises(ValueError, match="in-RAM"):
            link_datasets(
                old, new, LinkageConfig(shards=2), keep_cache=True
            )


class TestCrashResume:
    """Mid-round shard-boundary recovery: every checkpoint prefix of a
    completed run must resume to the identical decision ledger."""

    @pytest.fixture()
    def completed(self, tmp_path, country_pair):
        old, new = country_pair
        config = LinkageConfig(blocking="region", shards=3)
        ckpt = tmp_path / "ckpt"
        result = link_datasets(old, new, config, checkpoint_dir=ckpt)
        return old, new, config, ckpt, decision_ledger_hash(result)

    def test_resume_from_every_prefix(self, tmp_path, completed):
        old, new, config, ckpt, expected = completed
        names = sorted(
            path.name for path in ckpt.iterdir()
            if path.name != "shard_final.json"
        )
        assert len(names) >= 4  # several shard boundaries to crash at
        for cut in range(1, len(names) + 1):
            trunc = tmp_path / f"cut{cut}"
            trunc.mkdir()
            for name in names[:cut]:
                shutil.copy(ckpt / name, trunc / name)
            resumed = link_datasets(
                old, new, config, checkpoint_dir=trunc, resume=True
            )
            assert decision_ledger_hash(resumed) == expected, (
                f"diverged resuming after {names[cut - 1]}"
            )

    def test_resume_from_final_short_circuits(self, completed):
        old, new, config, ckpt, expected = completed
        resumed = link_datasets(
            old, new, config, checkpoint_dir=ckpt, resume=True
        )
        assert decision_ledger_hash(resumed) == expected

    def test_corrupt_state_skipped(self, tmp_path, completed):
        old, new, config, ckpt, expected = completed
        trunc = tmp_path / "corrupt"
        trunc.mkdir()
        names = sorted(
            path.name for path in ckpt.iterdir()
            if path.name != "shard_final.json"
        )
        for name in names[:2]:
            shutil.copy(ckpt / name, trunc / name)
        (trunc / names[2]).write_text("{torn", encoding="utf-8")
        resumed = link_datasets(
            old, new, config, checkpoint_dir=trunc, resume=True
        )
        assert decision_ledger_hash(resumed) == expected

    def test_config_mismatch_rejected(self, completed):
        old, new, config, ckpt, _ = completed
        changed = dataclasses.replace(config, delta_low=0.55)
        with pytest.raises(CheckpointMismatch, match="configuration"):
            link_datasets(
                old, new, changed, checkpoint_dir=ckpt, resume=True
            )

    def test_plan_mismatch_rejected(self, tmp_path, completed):
        old, new, config, ckpt, _ = completed
        # Drop the final state so resume must re-plan and re-enter.
        trunc = tmp_path / "noplanfinal"
        trunc.mkdir()
        for path in ckpt.iterdir():
            if path.name != "shard_final.json":
                shutil.copy(path, trunc / path.name)
        changed = dataclasses.replace(config, shards=2)
        with pytest.raises(CheckpointMismatch):
            link_datasets(
                old, new, changed, checkpoint_dir=trunc, resume=True
            )

    def test_resume_without_dir_rejected(self, country_pair):
        old, new = country_pair
        with pytest.raises(ValueError, match="checkpoint"):
            link_datasets_sharded(
                old, new, LinkageConfig(shards=2), resume=True
            )

    def test_store_describe(self, completed):
        _, _, _, ckpt, _ = completed
        rows = ShardStateStore(ckpt).describe()
        assert rows and all(row["status"] == "ok" for row in rows)
        assert rows[-1]["phase"] in ("round", "final")


class TestCli:
    @pytest.fixture()
    def store_dir(self, tmp_path):
        code = main([
            "generate", "--out", str(tmp_path / "data"),
            "--seed", "3", "--regions", "2",
            "--households-per-region", "15",
            "--store", str(tmp_path / "store"),
        ])
        assert code == 0
        return tmp_path

    def test_link_from_store(self, store_dir, capsys):
        code = main([
            "link", "--store", str(store_dir / "store"),
            "--shards", "2", "--blocking", "region",
            "--records", str(store_dir / "links.csv"),
        ])
        assert code == 0
        assert "record links" in capsys.readouterr().out
        assert (store_dir / "links.csv").exists()

    def test_store_and_csv_paths_agree(self, store_dir, capsys):
        main([
            "link", "--store", str(store_dir / "store"),
            "--shards", "2", "--blocking", "region",
            "--records", str(store_dir / "from_store.csv"),
        ])
        main([
            "link",
            str(store_dir / "data" / "census_1871.csv"),
            str(store_dir / "data" / "census_1881.csv"),
            "--blocking", "region",
            "--records", str(store_dir / "from_csv.csv"),
        ])
        capsys.readouterr()
        assert (
            (store_dir / "from_store.csv").read_text()
            == (store_dir / "from_csv.csv").read_text()
        )

    def test_store_with_year_selection(self, store_dir, capsys):
        code = main([
            "link", "--store", str(store_dir / "store"),
            "1871", "1881", "--shards", "2", "--blocking", "region",
        ])
        assert code == 0
        assert "record links" in capsys.readouterr().out

    def test_store_rejects_paths(self, store_dir, capsys):
        code = main([
            "link", "--store", str(store_dir / "store"),
            "a.csv", "b.csv",
        ])
        assert code == 2
        assert "years" in capsys.readouterr().err

    def test_shards_with_series_state_rejected(self, store_dir, capsys):
        code = main([
            "link",
            str(store_dir / "data" / "census_1871.csv"),
            str(store_dir / "data" / "census_1881.csv"),
            "--shards", "2", "--series-state", str(store_dir / "state"),
        ])
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_store_with_series_state_rejected(self, store_dir, capsys):
        code = main([
            "link", "--store", str(store_dir / "store"),
            "--series-state", str(store_dir / "state"),
        ])
        assert code == 2
        assert "--series-state" in capsys.readouterr().err
