"""Tests for the DOT visualisation exports."""

import pytest

from repro.core.enrichment import enrich_household
from repro.evolution.graph import EvolutionGraph
from repro.evolution.patterns import (
    GroupPatterns,
    PairPatterns,
    RecordPatterns,
)
from repro.viz import evolution_graph_to_dot, household_to_dot


@pytest.fixture
def evolution_graph():
    graph = EvolutionGraph()
    graph.add_snapshot(1871, ["r1"], ["g1", "g2"])
    graph.add_snapshot(1881, ["r2"], ["h1", "h2"])
    graph.add_pair_patterns(
        PairPatterns(
            1871,
            1881,
            RecordPatterns(preserved=[("r1", "r2")]),
            GroupPatterns(preserved=[("g1", "h1")], moves=[("g2", "h2")]),
        )
    )
    return graph


class TestHouseholdDot:
    def test_contains_members_and_edges(self, census_1871):
        household = enrich_household(census_1871.household("b71"))
        dot = household_to_dot(household)
        assert dot.startswith("graph")
        assert dot.rstrip().endswith("}")
        assert "john smith" in dot
        assert "spouse" in dot
        assert "age_diff=29" in dot  # Elizabeth-Steve derived edge

    def test_derived_edges_can_be_hidden(self, census_1871):
        household = enrich_household(census_1871.household("b71"))
        full = household_to_dot(household, include_derived_edges=True)
        slim = household_to_dot(household, include_derived_edges=False)
        assert full.count("--") > slim.count("--")

    def test_missing_age_rendered(self, census_1871):
        household = census_1871.household("a71")
        record = household.members["1871_2"].replace(age=None)
        shell = household.copy_shell()
        shell.members["1871_2"] = record
        dot = household_to_dot(shell)
        assert "?" in dot


class TestEvolutionDot:
    def test_group_view(self, evolution_graph):
        dot = evolution_graph_to_dot(evolution_graph)
        assert dot.startswith("digraph")
        assert "preserve_G" in dot
        assert "move" in dot
        assert "g1" in dot and "h2" in dot
        assert "r1" not in dot  # records hidden by default

    def test_record_view(self, evolution_graph):
        dot = evolution_graph_to_dot(evolution_graph, include_records=True)
        assert "preserve_R" in dot
        assert "r1" in dot

    def test_edge_type_filter(self, evolution_graph):
        dot = evolution_graph_to_dot(evolution_graph, edge_types=["move"])
        assert "move" in dot
        assert "preserve_G" not in dot

    def test_rank_per_year(self, evolution_graph):
        dot = evolution_graph_to_dot(evolution_graph)
        assert dot.count("rank=same") == 2

    def test_quoting_of_special_characters(self):
        graph = EvolutionGraph()
        graph.add_snapshot(1871, [], ['g"1'])
        dot = evolution_graph_to_dot(graph)
        assert r"\"" in dot
