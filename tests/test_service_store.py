"""EvolutionStore battery: round-trip fidelity, byte-level no-op
republish, crash/corruption behaviour (docs/SERVICE.md contracts).

The store is only allowed to serve a graph it can prove is exactly the
one published — so the tests here attack every layer of that proof:
payload bytes, envelope hashes, the manifest cross-check and the final
graph-version recomputation.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint.faults import failing_os_replace
from repro.core.config import LinkageConfig
from repro.datagen.generator import GeneratorConfig, generate_series
from repro.evolution.analysis import analyse_series
from repro.evolution.graph import EvolutionGraph
from repro.evolution.io import graph_to_dict
from repro.evolution.patterns import (
    GroupPatterns,
    PairPatterns,
    RecordPatterns,
)
from repro.service.store import (
    EvolutionStore,
    PublishReport,
    StoreCorrupt,
    StoreMissing,
    graph_version_of,
    node_id,
)


def small_analysis(num_snapshots=3, households=12, seed=11):
    datasets = generate_series(GeneratorConfig(
        seed=seed,
        num_snapshots=num_snapshots,
        initial_households=households,
    )).datasets
    return analyse_series(datasets, config=LinkageConfig())


@pytest.fixture(scope="module")
def analysis():
    return small_analysis()


def directory_bytes(directory):
    """Every file's bytes, keyed by name — the no-op comparison."""
    return {
        path.name: path.read_bytes()
        for path in Path(directory).iterdir()
        if path.is_file()
    }


class TestPublishAndLoad:
    def test_round_trip_is_exact(self, analysis, tmp_path):
        store = EvolutionStore(tmp_path)
        report = store.publish(analysis)
        assert isinstance(report, PublishReport)
        assert not report.is_noop
        loaded = store.load_graph()
        assert graph_to_dict(loaded) == graph_to_dict(analysis.graph)
        assert store.graph_version() == graph_version_of(analysis.graph)

    def test_accepts_graph_or_analysis(self, analysis, tmp_path):
        direct = EvolutionStore(tmp_path / "graph")
        wrapped = EvolutionStore(tmp_path / "analysis")
        assert (
            direct.publish(analysis.graph).graph_version
            == wrapped.publish(analysis).graph_version
        )

    def test_publish_rejects_non_graph(self, tmp_path):
        with pytest.raises(TypeError):
            EvolutionStore(tmp_path).publish(object())

    def test_empty_store(self, tmp_path):
        store = EvolutionStore(tmp_path)
        assert store.graph_version() is None
        with pytest.raises(StoreMissing):
            store.manifest()
        with pytest.raises(StoreMissing):
            store.load_graph()

    def test_republish_is_byte_noop(self, analysis, tmp_path):
        store = EvolutionStore(tmp_path)
        store.publish(analysis)
        before = directory_bytes(tmp_path)
        report = store.publish(analysis)
        assert report.is_noop
        assert not report.segments_written and not report.manifest_written
        assert directory_bytes(tmp_path) == before

    def test_append_rewrites_exactly_two_segments(self, tmp_path):
        """Snapshot N+1 arriving touches segment N (new ``next`` links),
        the new segment N+1 and the manifest — nothing else."""
        datasets = generate_series(GeneratorConfig(
            seed=11, num_snapshots=4, initial_households=12,
        )).datasets
        config = LinkageConfig()
        store = EvolutionStore(tmp_path)
        store.publish(analyse_series(datasets[:-1], config=config))
        report = store.publish(analyse_series(datasets, config=config))
        years = [int(name.split("_")[1])
                 for name in report.segments_written]
        assert years == [datasets[-2].year, datasets[-1].year]
        assert report.manifest_written
        assert len(report.segments_unchanged) == len(datasets) - 2

    def test_stray_year_rejected(self, tmp_path):
        graph = EvolutionGraph()
        graph.add_snapshot(1851, ["r1"], ["g1"])
        graph.vertices.add(("group", 1999, "zz"))
        with pytest.raises(ValueError, match="1999"):
            EvolutionStore(tmp_path).publish(graph)

    def test_lookup_node(self, analysis, tmp_path):
        store = EvolutionStore(tmp_path)
        store.publish(analysis)
        graph = analysis.graph
        vertex = sorted(v for v in graph.vertices if v[0] == "group")[0]
        kind, year, identifier = vertex
        node = store.lookup_node(kind, year, identifier)
        assert node is not None
        assert node["node"] == node_id(kind, year, identifier)
        assert node["kind"] == kind and node["id"] == identifier
        assert store.lookup_node("group", year, "no-such-household") is None

    def test_node_ids_are_stable_and_distinct(self):
        assert node_id("group", 1871, "g1") == node_id("group", 1871, "g1")
        assert node_id("group", 1871, "g1") != node_id("record", 1871, "g1")
        assert node_id("group", 1871, "g1") != node_id("group", 1881, "g1")


class TestCrashAndCorruption:
    def test_crash_mid_publish_keeps_old_view(self, tmp_path):
        """A publish that dies before the manifest flip leaves the
        previous view fully intact and loadable."""
        old = small_analysis(num_snapshots=2)
        new = small_analysis(num_snapshots=3)
        EvolutionStore(tmp_path).publish(old)
        crashing = EvolutionStore(tmp_path, replace=failing_os_replace)
        with pytest.raises(OSError, match="injected failure"):
            crashing.publish(new)
        survivor = EvolutionStore(tmp_path)
        assert survivor.graph_version() == graph_version_of(old.graph)
        assert graph_to_dict(survivor.load_graph()) == graph_to_dict(
            old.graph
        )

    def test_sweep_removes_orphans_only(self, analysis, tmp_path):
        store = EvolutionStore(tmp_path)
        store.publish(analysis)
        orphan = tmp_path / "seg_1700_000000000000.json"
        orphan.write_text("{}", encoding="utf-8")
        unrelated = tmp_path / "notes.txt"
        unrelated.write_text("keep me", encoding="utf-8")
        removed = store.sweep()
        assert removed == [orphan]
        assert unrelated.exists()
        assert graph_to_dict(store.load_graph()) == graph_to_dict(
            analysis.graph
        )

    def test_tampered_segment_detected(self, analysis, tmp_path):
        store = EvolutionStore(tmp_path)
        store.publish(analysis)
        segment = sorted(tmp_path.glob("seg_*.json"))[0]
        document = json.loads(segment.read_text(encoding="utf-8"))
        document["payload"]["nodes"][0]["id"] = "tampered"
        segment.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(StoreCorrupt, match="content hash mismatch"):
            store.load_graph()

    def test_swapped_valid_segment_detected(self, tmp_path):
        """A segment replaced by a *valid* document of other content is
        caught by the manifest hash cross-check."""
        store = EvolutionStore(tmp_path)
        store.publish(small_analysis(num_snapshots=3))
        other = EvolutionStore(tmp_path / "other")
        other.publish(small_analysis(num_snapshots=3, seed=12))
        victim = sorted(tmp_path.glob("seg_*.json"))[0]
        donor = sorted((tmp_path / "other").glob("seg_*.json"))[0]
        victim.write_bytes(donor.read_bytes())
        with pytest.raises(StoreCorrupt,
                           match="does not match the manifest"):
            store.load_graph()

    def test_truncated_segment_detected(self, analysis, tmp_path):
        store = EvolutionStore(tmp_path)
        store.publish(analysis)
        segment = sorted(tmp_path.glob("seg_*.json"))[0]
        segment.write_bytes(segment.read_bytes()[:40])
        with pytest.raises(StoreCorrupt, match="not valid JSON"):
            store.load_graph()

    def test_missing_segment_detected(self, analysis, tmp_path):
        store = EvolutionStore(tmp_path)
        store.publish(analysis)
        sorted(tmp_path.glob("seg_*.json"))[0].unlink()
        with pytest.raises(StoreCorrupt, match="cannot read segment"):
            store.load_graph()

    def test_tampered_manifest_detected(self, analysis, tmp_path):
        store = EvolutionStore(tmp_path)
        store.publish(analysis)
        manifest = tmp_path / "manifest.json"
        document = json.loads(manifest.read_text(encoding="utf-8"))
        document["payload"]["graph_version"] = "0" * 16
        manifest.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(StoreCorrupt, match="content hash mismatch"):
            store.load_graph()

    def test_unsupported_schema_detected(self, analysis, tmp_path):
        store = EvolutionStore(tmp_path)
        store.publish(analysis)
        manifest = tmp_path / "manifest.json"
        document = json.loads(manifest.read_text(encoding="utf-8"))
        document["service_schema"] = 99
        manifest.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(StoreCorrupt, match="unsupported service schema"):
            store.manifest()

    def test_republish_heals_tampering(self, analysis, tmp_path):
        """_write_if_changed compares content, not existence — a
        publish over a tampered store restores every byte."""
        store = EvolutionStore(tmp_path)
        store.publish(analysis)
        pristine = directory_bytes(tmp_path)
        segment = sorted(tmp_path.glob("seg_*.json"))[0]
        segment.write_text("garbage", encoding="utf-8")
        report = store.publish(analysis)
        assert segment.name in report.segments_written
        assert directory_bytes(tmp_path) == pristine


# -- hypothesis: round-trip over arbitrary analysis-shaped graphs -----------

ids = st.lists(
    st.text(alphabet="abcdefgh12345", min_size=1, max_size=4),
    min_size=1, max_size=4, unique=True,
)


@st.composite
def pattern_graphs(draw):
    """Small analysis-shaped graphs: ascending years, per-pair patterns
    over fresh id pools (the shape ``analyse_series`` produces)."""
    years = sorted(draw(st.lists(
        st.integers(min_value=1801, max_value=1901),
        min_size=2, max_size=4, unique=True,
    )))
    graph = EvolutionGraph()
    pools = {}
    for year in years:
        records = [f"r{year}_{i}" for i in draw(ids)]
        groups = [f"g{year}_{i}" for i in draw(ids)]
        pools[year] = (records, groups)
        graph.add_snapshot(year, records, groups)
    for old_year, new_year in zip(years, years[1:]):
        old_records, old_groups = pools[old_year]
        new_records, new_groups = pools[new_year]
        preserved_r = list(zip(old_records, new_records))[
            : draw(st.integers(0, min(len(old_records), len(new_records))))
        ]
        preserved_g = [(old_groups[0], new_groups[0])] if draw(
            st.booleans()
        ) else []
        splits = {}
        if len(old_groups) > 1 and len(new_groups) > 1 and draw(
            st.booleans()
        ):
            splits[old_groups[1]] = new_groups[:2]
        graph.add_pair_patterns(PairPatterns(
            old_year,
            new_year,
            RecordPatterns(preserved=preserved_r),
            GroupPatterns(preserved=preserved_g, splits=splits),
        ))
    return graph


@given(graph=pattern_graphs())
@settings(max_examples=25, deadline=None)
def test_store_round_trip_preserves_graph_to_dict(graph, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("store-prop")
    store = EvolutionStore(tmp)
    report = store.publish(graph)
    assert report.graph_version == graph_version_of(graph)
    assert graph_to_dict(store.load_graph()) == graph_to_dict(graph)
    assert store.publish(graph).is_noop
