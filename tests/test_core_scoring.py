"""Unit tests for group-pair scoring (Eq. 4-7), checked against the
paper's worked example (Eq. 8)."""

import pytest

from repro.blocking.standard import CrossProductBlocker
from repro.core.config import LinkageConfig
from repro.core.enrichment import complete_groups
from repro.core.prematching import prematching
from repro.core.scoring import (
    aggregate_group_similarity,
    average_record_similarity,
    edge_similarity,
    score_subgraph,
    uniqueness,
)
from repro.core.subgraph import SubgraphMatch, build_subgraph
from repro.similarity.vector import build_similarity_function

NAME_FUNC = build_similarity_function(
    [("first_name", "qgram", 0.5), ("surname", "qgram", 0.5)], 1.0
)


@pytest.fixture
def worked_example(census_1871, census_1881):
    prematch = prematching(
        list(census_1871.iter_records()),
        list(census_1881.iter_records()),
        NAME_FUNC,
        CrossProductBlocker(),
    )
    enriched_old = complete_groups(census_1871)
    enriched_new = complete_groups(census_1881)
    config = LinkageConfig(blocking="cross")
    true_pair = build_subgraph(
        enriched_old["a71"], enriched_new["a81"], prematch, config
    )
    # The paper's Fig. 4 keeps Elizabeth (37 -> 40, i.e. a 7-year
    # normalised deviation) as a vertex of the decoy pair; our default
    # record-level age filter would drop her (and then the whole decoy),
    # so the worked example is reproduced with the filter relaxed.
    relaxed = LinkageConfig(blocking="cross", max_normalised_age_difference=99.0)
    decoy_pair = build_subgraph(
        enriched_old["a71"], enriched_new["d81"], prematch, relaxed
    )
    return prematch, config, true_pair, decoy_pair


class TestEq8TruePair:
    def test_avg_sim(self, worked_example):
        prematch, config, true_pair, _ = worked_example
        assert average_record_similarity(true_pair, prematch) == pytest.approx(1.0)

    def test_e_sim(self, worked_example):
        _, _, true_pair, _ = worked_example
        # 2 * (1+1+1) / (10+3) = 0.4615...
        assert edge_similarity(true_pair) == pytest.approx(0.4615, abs=1e-3)

    def test_uniqueness(self, worked_example):
        prematch, _, true_pair, _ = worked_example
        # 2 * 3 / (3+3+3) = 0.666...
        assert uniqueness(true_pair, prematch) == pytest.approx(2 / 3, abs=1e-9)


class TestEq8DecoyPair:
    def test_avg_sim(self, worked_example):
        prematch, _, _, decoy = worked_example
        assert average_record_similarity(decoy, prematch) == pytest.approx(1.0)

    def test_e_sim_lower_than_true_pair(self, worked_example):
        _, _, true_pair, decoy = worked_example
        # The paper reports 0.15 (rounding rp_sim of the inexact spouse
        # edge to 1); with our graded rp_sim the value is lower still —
        # either way, far below the true pair's 0.46.
        assert edge_similarity(decoy) < edge_similarity(true_pair)
        assert edge_similarity(decoy) == pytest.approx(
            2 * (2 / 3) / 13, abs=1e-3
        )

    def test_uniqueness(self, worked_example):
        prematch, _, _, decoy = worked_example
        assert uniqueness(decoy, prematch) == pytest.approx(2 / 3, abs=1e-9)

    def test_true_pair_wins_overall(self, worked_example):
        prematch, config, true_pair, decoy = worked_example
        score_subgraph(true_pair, prematch, config)
        score_subgraph(decoy, prematch, config)
        assert true_pair.g_sim > decoy.g_sim


class TestAggregation:
    def test_weights(self):
        config = LinkageConfig(alpha=0.2, beta=0.7)
        value = aggregate_group_similarity(1.0, 0.5, 0.6, config)
        assert value == pytest.approx(0.2 * 1.0 + 0.7 * 0.5 + 0.1 * 0.6)

    def test_alpha_only(self):
        config = LinkageConfig(alpha=1.0, beta=0.0)
        assert aggregate_group_similarity(0.8, 0.1, 0.2, config) == pytest.approx(0.8)

    def test_uniqueness_weight_property(self):
        assert LinkageConfig(alpha=0.2, beta=0.7).uniqueness_weight == pytest.approx(0.1)
        assert LinkageConfig(alpha=0.5, beta=0.5).uniqueness_weight == 0.0

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            LinkageConfig(alpha=0.8, beta=0.5)


class TestEdgeCases:
    def test_empty_subgraph_scores_zero(self):
        subgraph = SubgraphMatch("g", "h", [], [], 0, 0)
        assert edge_similarity(subgraph) == 0.0

    def test_e_sim_capped_at_one(self):
        subgraph = SubgraphMatch(
            "g", "h", [("o1", "n1"), ("o2", "n2")], [(0, 1, 1.0)], 1, 1
        )
        assert edge_similarity(subgraph) == 1.0
