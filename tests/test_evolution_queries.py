"""Tests for evolution-graph mining queries."""

import pytest

from repro.evolution.graph import EvolutionGraph
from repro.evolution.patterns import (
    GroupPatterns,
    PairPatterns,
    RecordPatterns,
)
from repro.evolution.queries import (
    WalkDepthExceeded,
    frequent_change_sequences,
    group_neighborhood,
    household_lineage,
    households_with_history,
    person_timeline,
    preserve_chains,
)


@pytest.fixture
def graph():
    graph = EvolutionGraph()
    graph.add_snapshot(1851, ["r1"], ["g1", "g2"])
    graph.add_snapshot(1861, ["r2"], ["h1", "h2", "h3"])
    graph.add_snapshot(1871, ["r3"], ["k1", "k2", "k3"])
    graph.add_pair_patterns(
        PairPatterns(
            1851,
            1861,
            RecordPatterns(preserved=[("r1", "r2")]),
            GroupPatterns(preserved=[("g1", "h1")], moves=[("g2", "h2")]),
        )
    )
    graph.add_pair_patterns(
        PairPatterns(
            1861,
            1871,
            RecordPatterns(preserved=[("r2", "r3")]),
            GroupPatterns(
                preserved=[],
                splits={"h1": ["k1", "k2"]},
            ),
        )
    )
    return graph


class TestPersonTimeline:
    def test_full_chain(self, graph):
        steps = person_timeline(graph, 1851, "r1")
        assert [(s.year, s.identifier) for s in steps] == [
            (1851, "r1"),
            (1861, "r2"),
            (1871, "r3"),
        ]
        assert steps[0].edge_type is None
        assert steps[1].edge_type == "preserve_R"

    def test_dead_end(self, graph):
        steps = person_timeline(graph, 1861, "r2")
        assert len(steps) == 2

    def test_unknown_person(self, graph):
        assert len(person_timeline(graph, 1851, "ghost")) == 1


class TestHouseholdLineage:
    def test_fan_out_on_split(self, graph):
        paths = household_lineage(graph, 1851, "g1")
        leaves = {path[-1].identifier for path in paths}
        assert leaves == {"k1", "k2"}
        for path in paths:
            assert path[0].identifier == "g1"
            assert path[1].edge_type == "preserve_G"
            assert path[2].edge_type == "split"

    def test_single_hop(self, graph):
        paths = household_lineage(graph, 1851, "g2")
        assert len(paths) == 1
        assert paths[0][-1].identifier == "h2"


class TestFrequentSequences:
    def test_length_two(self, graph):
        sequences = frequent_change_sequences(graph, length=2)
        assert sequences[("preserve_G", "split")] == 2  # to k1 and k2

    def test_length_one(self, graph):
        sequences = frequent_change_sequences(graph, length=1)
        assert sequences[("preserve_G",)] == 1
        assert sequences[("move",)] == 1
        assert sequences[("split",)] == 2

    def test_invalid_length(self, graph):
        with pytest.raises(ValueError):
            frequent_change_sequences(graph, length=0)


class TestPreserveChains:
    def test_maximal_chains(self, graph):
        chains = preserve_chains(graph)
        assert [
            [(s.year, s.identifier) for s in chain] for chain in chains
        ] == [[(1851, "g1"), (1861, "h1")]]
        assert chains[0][1].edge_type == "preserve_G"

    def test_min_length_filters(self, graph):
        assert preserve_chains(graph, min_length=2) == []

    def test_min_length_validated(self, graph):
        with pytest.raises(ValueError):
            preserve_chains(graph, min_length=0)


class TestGroupNeighborhood:
    def test_radius_one(self, graph):
        edges = group_neighborhood(graph, 1861, "h1")
        assert {
            (e.source[2], e.target[2], e.edge_type) for e in edges
        } == {("g1", "h1", "preserve_G"), ("h1", "k1", "split"),
              ("h1", "k2", "split")}

    def test_radius_zero_is_empty(self, graph):
        assert group_neighborhood(graph, 1861, "h1", radius=0) == []

    def test_type_filter(self, graph):
        edges = group_neighborhood(graph, 1861, "h1", edge_types=("split",))
        assert {e.edge_type for e in edges} == {"split"}

    def test_unknown_type_rejected(self, graph):
        with pytest.raises(ValueError):
            group_neighborhood(graph, 1861, "h1", edge_types=("teleport",))

    def test_negative_radius_rejected(self, graph):
        with pytest.raises(ValueError):
            group_neighborhood(graph, 1861, "h1", radius=-1)


@pytest.fixture
def cyclic_graph():
    """Two snapshots preserve-linked in both directions — the shape a
    hand-built or corrupted serialized graph can take, which an
    unbounded walker would follow forever."""
    graph = EvolutionGraph()
    graph.add_snapshot(1851, ["r1"], ["g1"])
    graph.add_snapshot(1861, ["r2"], ["h1"])
    graph.add_pair_patterns(
        PairPatterns(
            1851,
            1861,
            RecordPatterns(preserved=[("r1", "r2")]),
            GroupPatterns(preserved=[("g1", "h1")]),
        )
    )
    graph.add_pair_patterns(
        PairPatterns(
            1861,
            1851,
            RecordPatterns(preserved=[("r2", "r1")]),
            GroupPatterns(preserved=[("h1", "g1")]),
        )
    )
    return graph


class TestDepthGuards:
    """Every walker must fail a cyclic graph with WalkDepthExceeded —
    never a RecursionError or an unbounded loop (regression for the
    unguarded recursive walkers the query service exposed)."""

    def test_person_timeline_cycle(self, cyclic_graph):
        with pytest.raises(WalkDepthExceeded):
            person_timeline(cyclic_graph, 1851, "r1")

    def test_household_lineage_cycle(self, cyclic_graph):
        with pytest.raises(WalkDepthExceeded):
            household_lineage(cyclic_graph, 1851, "g1")

    def test_preserve_chains_cycle(self, cyclic_graph):
        # A pure 2-cycle has no chain head; attach one so the walk enters
        # the cycle.
        cyclic_graph.add_snapshot(1871, [], ["z1"])
        cyclic_graph.add_pair_patterns(
            PairPatterns(
                1871,
                1851,
                RecordPatterns(),
                GroupPatterns(preserved=[("z1", "g1")]),
            )
        )
        with pytest.raises(WalkDepthExceeded):
            preserve_chains(cyclic_graph)

    def test_depth_guard_is_tight(self, graph):
        # The acyclic fixture is 2 hops deep: a budget of 1 trips, a
        # budget of 2 passes and returns the full walk.
        with pytest.raises(WalkDepthExceeded):
            person_timeline(graph, 1851, "r1", max_depth=1)
        assert len(person_timeline(graph, 1851, "r1", max_depth=2)) == 3
        with pytest.raises(WalkDepthExceeded):
            household_lineage(graph, 1851, "g1", max_depth=1)
        assert len(household_lineage(graph, 1851, "g1", max_depth=2)) == 2

    def test_sequence_length_capped_by_budget(self, graph):
        with pytest.raises(WalkDepthExceeded):
            frequent_change_sequences(graph, length=3, max_depth=2)
        with pytest.raises(WalkDepthExceeded):
            households_with_history(
                graph, "preserve_G", "split", max_depth=1
            )

    def test_neighborhood_radius_capped_by_budget(self, graph):
        with pytest.raises(WalkDepthExceeded):
            group_neighborhood(graph, 1861, "h1", radius=5, max_depth=2)


class TestHouseholdsWithHistory:
    def test_matching_history(self, graph):
        found = households_with_history(graph, "preserve_G", "split")
        assert found == [("group", 1851, "g1")]

    def test_no_match(self, graph):
        assert households_with_history(graph, "merge") == []

    def test_requires_types(self, graph):
        with pytest.raises(ValueError):
            households_with_history(graph)
