"""Tests for evolution-graph mining queries."""

import pytest

from repro.evolution.graph import EvolutionGraph
from repro.evolution.patterns import (
    GroupPatterns,
    PairPatterns,
    RecordPatterns,
)
from repro.evolution.queries import (
    frequent_change_sequences,
    household_lineage,
    households_with_history,
    person_timeline,
)


@pytest.fixture
def graph():
    graph = EvolutionGraph()
    graph.add_snapshot(1851, ["r1"], ["g1", "g2"])
    graph.add_snapshot(1861, ["r2"], ["h1", "h2", "h3"])
    graph.add_snapshot(1871, ["r3"], ["k1", "k2", "k3"])
    graph.add_pair_patterns(
        PairPatterns(
            1851,
            1861,
            RecordPatterns(preserved=[("r1", "r2")]),
            GroupPatterns(preserved=[("g1", "h1")], moves=[("g2", "h2")]),
        )
    )
    graph.add_pair_patterns(
        PairPatterns(
            1861,
            1871,
            RecordPatterns(preserved=[("r2", "r3")]),
            GroupPatterns(
                preserved=[],
                splits={"h1": ["k1", "k2"]},
            ),
        )
    )
    return graph


class TestPersonTimeline:
    def test_full_chain(self, graph):
        steps = person_timeline(graph, 1851, "r1")
        assert [(s.year, s.identifier) for s in steps] == [
            (1851, "r1"),
            (1861, "r2"),
            (1871, "r3"),
        ]
        assert steps[0].edge_type is None
        assert steps[1].edge_type == "preserve_R"

    def test_dead_end(self, graph):
        steps = person_timeline(graph, 1861, "r2")
        assert len(steps) == 2

    def test_unknown_person(self, graph):
        assert len(person_timeline(graph, 1851, "ghost")) == 1


class TestHouseholdLineage:
    def test_fan_out_on_split(self, graph):
        paths = household_lineage(graph, 1851, "g1")
        leaves = {path[-1].identifier for path in paths}
        assert leaves == {"k1", "k2"}
        for path in paths:
            assert path[0].identifier == "g1"
            assert path[1].edge_type == "preserve_G"
            assert path[2].edge_type == "split"

    def test_single_hop(self, graph):
        paths = household_lineage(graph, 1851, "g2")
        assert len(paths) == 1
        assert paths[0][-1].identifier == "h2"


class TestFrequentSequences:
    def test_length_two(self, graph):
        sequences = frequent_change_sequences(graph, length=2)
        assert sequences[("preserve_G", "split")] == 2  # to k1 and k2

    def test_length_one(self, graph):
        sequences = frequent_change_sequences(graph, length=1)
        assert sequences[("preserve_G",)] == 1
        assert sequences[("move",)] == 1
        assert sequences[("split",)] == 2

    def test_invalid_length(self, graph):
        with pytest.raises(ValueError):
            frequent_change_sequences(graph, length=0)


class TestHouseholdsWithHistory:
    def test_matching_history(self, graph):
        found = households_with_history(graph, "preserve_G", "split")
        assert found == [("group", 1851, "g1")]

    def test_no_match(self, graph):
        assert households_with_history(graph, "merge") == []

    def test_requires_types(self, graph):
        with pytest.raises(ValueError):
            households_with_history(graph)
