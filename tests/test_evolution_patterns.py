"""Tests for record and group evolution patterns (Section 4.1)."""

import pytest

from repro.evolution.patterns import (
    extract_group_patterns,
    extract_patterns,
    extract_record_patterns,
    group_overlaps,
)
from repro.model.mappings import GroupMapping, RecordMapping

# The running example's correct mappings (§2 and Fig. 5a).
TRUE_RECORD_PAIRS = [
    ("1871_1", "1881_1"),
    ("1871_2", "1881_2"),
    ("1871_3", "1881_7"),
    ("1871_4", "1881_3"),
    ("1871_6", "1881_4"),
    ("1871_7", "1881_5"),
    ("1871_8", "1881_6"),
]
TRUE_GROUP_PAIRS = [
    ("a71", "a81"),
    ("b71", "b81"),
    ("a71", "c81"),
    ("b71", "c81"),
]


@pytest.fixture
def mappings():
    return RecordMapping(TRUE_RECORD_PAIRS), GroupMapping(TRUE_GROUP_PAIRS)


class TestRecordPatterns:
    def test_fig5a_counts(self, census_1871, census_1881, mappings):
        record_mapping, _ = mappings
        patterns = extract_record_patterns(
            census_1871, census_1881, record_mapping
        )
        counts = patterns.counts()
        # Fig. 5(a): 7 preserved, 4 additions, 1 removal.
        assert counts["preserve_R"] == 7
        assert counts["add_R"] == 4
        assert counts["remove_R"] == 1

    def test_removed_is_john_riley(self, census_1871, census_1881, mappings):
        record_mapping, _ = mappings
        patterns = extract_record_patterns(
            census_1871, census_1881, record_mapping
        )
        assert patterns.removed == ["1871_5"]

    def test_added_includes_mary_and_d_household(
        self, census_1871, census_1881, mappings
    ):
        record_mapping, _ = mappings
        patterns = extract_record_patterns(
            census_1871, census_1881, record_mapping
        )
        assert set(patterns.added) == {"1881_8", "1881_9", "1881_10", "1881_11"}


class TestGroupOverlaps:
    def test_overlap_counts(self, census_1871, census_1881, mappings):
        record_mapping, _ = mappings
        overlaps = group_overlaps(census_1871, census_1881, record_mapping)
        assert overlaps[("a71", "a81")] == 3
        assert overlaps[("a71", "c81")] == 1
        assert overlaps[("b71", "c81")] == 1
        assert overlaps[("b71", "b81")] == 2


class TestGroupPatterns:
    def test_fig5a_group_patterns(self, census_1871, census_1881, mappings):
        record_mapping, group_mapping = mappings
        patterns = extract_group_patterns(
            census_1871, census_1881, record_mapping, group_mapping
        )
        counts = patterns.counts()
        # Fig. 5(a): a and b preserved (despite Alice/Steve moving out);
        # d newly appeared; Alice and Steve moved into c.
        assert counts["preserve_G"] == 2
        assert set(patterns.preserved) == {("a71", "a81"), ("b71", "b81")}
        assert counts["move"] == 2
        assert counts["add_G"] == 1  # d81 only (c81 is linked)
        assert counts["remove_G"] == 0
        assert counts["split"] == 0
        assert counts["merge"] == 0

    def test_preserve_without_movers(self, census_1871, census_1881):
        """Without the marriage links, a and b are still preserved."""
        record_mapping = RecordMapping(
            [pair for pair in TRUE_RECORD_PAIRS if pair[1] not in ("1881_6", "1881_7")]
        )
        group_mapping = GroupMapping([("a71", "a81"), ("b71", "b81")])
        patterns = extract_group_patterns(
            census_1871, census_1881, record_mapping, group_mapping
        )
        assert set(patterns.preserved) == {("a71", "a81"), ("b71", "b81")}
        assert patterns.counts()["add_G"] == 2  # c81 and d81

    def test_move_requires_exactly_one_member(
        self, census_1871, census_1881, mappings
    ):
        record_mapping, group_mapping = mappings
        patterns = extract_group_patterns(
            census_1871, census_1881, record_mapping, group_mapping
        )
        assert set(patterns.moves) == {("a71", "c81"), ("b71", "c81")}

    def test_split_detection(self, census_1871, census_1881):
        """If two siblings had moved together, a71 -> {a81, c81} would be
        a split (>=2 members into each part)."""
        record_mapping = RecordMapping(
            [
                ("1871_1", "1881_1"),
                ("1871_2", "1881_2"),
                ("1871_3", "1881_7"),
                ("1871_4", "1881_6"),  # pretend William moved with Alice
            ]
        )
        group_mapping = GroupMapping([("a71", "a81"), ("a71", "c81")])
        patterns = extract_group_patterns(
            census_1871, census_1881, record_mapping, group_mapping
        )
        assert patterns.splits == {"a71": ["a81", "c81"]}
        assert patterns.counts()["split"] == 1

    def test_merge_detection(self, census_1871, census_1881):
        """Two members from each old household landing in c81 is a merge."""
        record_mapping = RecordMapping(
            [
                ("1871_3", "1881_7"),
                ("1871_4", "1881_8"),
                ("1871_8", "1881_6"),
                ("1871_7", "1881_5"),
                ("1871_6", "1881_4"),
            ]
        )
        group_mapping = GroupMapping(
            [("a71", "c81"), ("b71", "c81"), ("b71", "b81")]
        )
        patterns = extract_group_patterns(
            census_1871, census_1881, record_mapping, group_mapping
        )
        assert "c81" not in patterns.merges  # b71 contributes only 1 to c81
        record_mapping2 = RecordMapping(
            [
                ("1871_3", "1881_7"),
                ("1871_4", "1881_8"),
                ("1871_8", "1881_6"),
                ("1871_7", "1881_5"),
            ]
        )
        group_mapping2 = GroupMapping([("a71", "c81"), ("b71", "c81")])
        patterns2 = extract_group_patterns(
            census_1871, census_1881, record_mapping2, group_mapping2
        )
        assert "c81" not in patterns2.merges  # still only 1 from b71

    def test_merge_positive_case(self, census_1871, census_1881):
        record_mapping = RecordMapping(
            [
                ("1871_3", "1881_7"),  # a71 -> c81
                ("1871_4", "1881_8"),  # a71 -> c81
                ("1871_8", "1881_6"),  # b71 -> c81
                ("1871_7", "1881_5"),
            ]
        )
        # Give b71 two members in c81 by moving Elizabeth there too.
        record_mapping = RecordMapping(
            [
                ("1871_3", "1881_7"),
                ("1871_4", "1881_8"),
                ("1871_8", "1881_6"),
                ("1871_5", "1881_9"),
            ]
        )
        group_mapping = GroupMapping([("a71", "c81")])
        patterns = extract_group_patterns(
            census_1871, census_1881, record_mapping, group_mapping
        )
        assert patterns.counts()["merge"] == 0  # only one source household

    def test_full_extract_patterns(self, census_1871, census_1881, mappings):
        record_mapping, group_mapping = mappings
        pair = extract_patterns(
            census_1871, census_1881, record_mapping, group_mapping
        )
        assert pair.old_year == 1871
        assert pair.new_year == 1881
        combined = pair.counts()
        assert combined["preserve_R"] == 7
        assert combined["move"] == 2
