"""Bit-identity battery for the vectorized batch scoring kernel.

The kernel (:mod:`repro.core.kernel`) may replace the per-pair reference
path only because its outcomes are *bit-identical* — same float64 bits,
same pruning kinds, same effort accounting.  This module proves that
claim from the bottom up:

* the columnar encoding preserves every per-string fact the reference
  comparators derive (q-gram multisets via occurrence expansion,
  normalised lengths, exact-match keys, missing flags);
* ``agg_sim_chunk`` equals :meth:`SimilarityFunction.agg_sim` bit for
  bit, for every missing policy;
* ``evaluate_chunk`` equals :meth:`CandidateFilter.evaluate` bit for
  bit — value *and* pruning kind — for every filter-stage subset and δ;
* the no-numpy fallback degrades to the reference path losslessly;
* the kernel pickles (it is shipped to worker pools via initializer).

These properties gate the tentpole: if any fails, the vectorized
backend is not a drop-in replacement and must not ship as the default.
"""

import pickle
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LinkageConfig
from repro.core.filtering import (
    CMP_EXACT,
    CMP_QGRAM2,
    CandidateFilter,
    FilteringConfig,
    normalised_length,
    qgram_count,
)
from repro.core.kernel import (
    BACKEND_PYTHON,
    BACKEND_VECTORIZED,
    SCORING_BACKENDS,
    BatchScoringKernel,
    ColumnEncoder,
    build_scoring_kernel,
    encode_columns,
    kernel_available,
)
from repro.core.pipeline import link_datasets
from repro.datagen import generate_pair
from repro.instrumentation import KERNEL_BATCHES, KERNEL_PAIRS
from repro.similarity.qgram import qgrams
from repro.similarity.vector import (
    MISSING_IGNORE,
    MISSING_NEUTRAL,
    MISSING_ZERO,
    _is_missing,
    build_similarity_function,
)
from tests.strategies import names, person_records

#: Weight specs exercising every comparator class the kernel encodes:
#: pure q-gram+exact, a length-boundable scalar mix, and an opaque
#: comparator with no cheap bound (mirrors test_filtering_soundness).
WEIGHT_SPECS = {
    "omega2-qgram": (
        ("first_name", "qgram", 0.4),
        ("sex", "exact", 0.2),
        ("surname", "qgram", 0.2),
        ("address", "qgram", 0.1),
        ("occupation", "qgram", 0.1),
    ),
    "levenshtein-mix": (
        ("first_name", "levenshtein", 0.3),
        ("surname", "levenshtein", 0.3),
        ("sex", "exact", 0.2),
        ("address", "qgram", 0.2),
    ),
    "trigram-opaque-mix": (
        ("first_name", "trigram", 0.4),
        ("surname", "jaro_winkler", 0.4),
        ("sex", "exact", 0.2),
    ),
}

deltas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
policies = st.sampled_from((MISSING_ZERO, MISSING_NEUTRAL, MISSING_IGNORE))
spec_keys = st.sampled_from(sorted(WEIGHT_SPECS))

#: The encoder/kernel batteries need the real vectorized backend; the
#: no-numpy CI lane runs only the plumbing + fallback tests below.
needs_numpy = pytest.mark.skipif(
    not kernel_available(),
    reason="numpy unavailable: vectorized backend cannot run",
)


@st.composite
def record_chunks(draw, max_old=4, max_new=4):
    """Two small record lists with unique ids — one candidate chunk."""
    old = [
        draw(person_records(record_id=f"o{i}", household_id="h1"))
        for i in range(draw(st.integers(1, max_old)))
    ]
    new = [
        draw(person_records(record_id=f"n{i}", household_id="h2"))
        for i in range(draw(st.integers(1, max_new)))
    ]
    return old, new


def cross_pairs(old, new):
    return [(o.record_id, n.record_id) for o in old for n in new]


# -- encoder: every per-string fact survives the packing ---------------------


@needs_numpy
class TestColumnEncoder:
    @given(st.lists(person_records(), min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_qgram_tokens_roundtrip_the_multiset(self, records):
        """Occurrence expansion is lossless: each distinct value's token
        array has exactly one token per padded q-gram occurrence, sorted
        and duplicate-free — multiset overlap becomes set intersection."""
        encoder = ColumnEncoder("first_name", CMP_QGRAM2)
        column = encoder.encode(records)
        for record in records:
            value = record.first_name
            if _is_missing(value):
                continue
            code = None
            for candidate, stored in enumerate(column.values):
                if stored == value:
                    code = candidate
                    break
            assert code is not None
            tokens = column.tok_flat[
                column.tok_off[code]:column.tok_off[code + 1]
            ]
            grams = qgrams(value, 2, padded=True)
            assert len(tokens) == len(grams)
            assert len(set(tokens.tolist())) == len(tokens)  # true set
            assert sorted(tokens.tolist()) == tokens.tolist()
            assert column.gram_count[code] == len(grams)
            assert column.gram_count[code] == qgram_count(str(value), 2, True)
            assert column.norm_len[code] == normalised_length(str(value))

    @given(names, names)
    @settings(max_examples=200)
    def test_token_intersection_equals_multiset_overlap(self, left, right):
        """The premise of chunked Dice: |tokens(a) ∩ tokens(b)| equals
        the Counter Σ min overlap the reference q-gram comparator uses."""
        encoder = ColumnEncoder("first_name", CMP_QGRAM2)
        left_tokens = set(encoder._tokens_of(left))
        right_tokens = set(encoder._tokens_of(right))
        reference = sum(
            (Counter(qgrams(left, 2, padded=True))
             & Counter(qgrams(right, 2, padded=True))).values()
        )
        assert len(left_tokens & right_tokens) == reference

    @given(st.lists(names, min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_exact_codes_agree_iff_normalised_equal(self, values):
        records = [
            person_record_with(first_name=value, record_id=f"r{i}")
            for i, value in enumerate(values)
        ]
        encoder = ColumnEncoder("first_name", CMP_EXACT)
        column = encoder.encode(records)
        for i, left in enumerate(records):
            for j, right in enumerate(records):
                if column.missing[i] or column.missing[j]:
                    continue
                same_code = (
                    column.eq_codes[column.codes[i]]
                    == column.eq_codes[column.codes[j]]
                )
                same_norm = (
                    " ".join(str(left.first_name).lower().split())
                    == " ".join(str(right.first_name).lower().split())
                )
                assert same_code == same_norm

    @given(st.lists(person_records(), min_size=1, max_size=6))
    @settings(max_examples=50)
    def test_missing_flags_match_reference_predicate(self, records):
        column = ColumnEncoder("occupation", CMP_QGRAM2).encode(records)
        for row, record in enumerate(records):
            assert bool(column.missing[row]) == _is_missing(record.occupation)
            if column.missing[row]:
                assert column.codes[row] == 0  # parked on the dummy

    def test_vocabularies_shared_across_datasets(self):
        old = [person_record_with(first_name="mary", record_id="o0")]
        new = [person_record_with(first_name="mary", record_id="n0")]
        sim_func = build_similarity_function(
            [("first_name", "qgram", 1.0)], 0.7
        )
        old_cols, new_cols, token_space = encode_columns(sim_func, old, new)
        old_tokens = old_cols[0].tok_flat.tolist()
        new_tokens = new_cols[0].tok_flat.tolist()
        assert old_tokens == new_tokens  # same value -> same token ids
        assert token_space[0] == len(set(old_tokens))


def person_record_with(**overrides):
    from repro.model.records import PersonRecord

    defaults = dict(
        record_id="r0", household_id="h0", first_name="john",
        surname="smith", sex="m", age=30, occupation=None, address=None,
        role="head",
    )
    defaults.update(overrides)
    return PersonRecord(**defaults)


# -- chunk scoring: bit-identical to the reference path ----------------------


@needs_numpy
class TestChunkBitIdentity:
    @given(record_chunks(), spec_keys, policies)
    @settings(max_examples=150, deadline=None)
    def test_agg_sim_chunk_bit_identical(self, chunk, spec_key, policy):
        old, new = chunk
        sim_func = build_similarity_function(
            list(WEIGHT_SPECS[spec_key]), 0.7, policy
        )
        kernel = BatchScoringKernel(sim_func, old, new)
        pairs = cross_pairs(old, new)
        batch = kernel.agg_sim_chunk(pairs)
        old_index = {r.record_id: r for r in old}
        new_index = {r.record_id: r for r in new}
        for (old_id, new_id), got in zip(pairs, batch):
            want = sim_func.agg_sim(old_index[old_id], new_index[new_id])
            assert got == want, (old_id, new_id, got, want)

    @given(record_chunks(), spec_keys, policies, deltas, st.integers(0, 14))
    @settings(max_examples=150, deadline=None)
    def test_evaluate_chunk_bit_identical(
        self, chunk, spec_key, policy, delta, mask
    ):
        """Value AND pruning kind match CandidateFilter.evaluate for
        every subset of the four filter stages — the masked-pruning
        pipeline is a faithful translation, not an approximation."""
        old, new = chunk
        sim_func = build_similarity_function(
            list(WEIGHT_SPECS[spec_key]), delta, policy
        )
        config = FilteringConfig(
            length_filter=bool(mask & 1),
            qgram_filter=bool(mask & 2),
            exact_shortcircuit=bool(mask & 4),
            early_exit=bool(mask & 8),
        )
        engine = CandidateFilter(sim_func, config)
        kernel = BatchScoringKernel(sim_func, old, new, filtering=config)
        pairs = cross_pairs(old, new)
        batch = kernel.evaluate_chunk(pairs, delta)
        old_index = {r.record_id: r for r in old}
        new_index = {r.record_id: r for r in new}
        for (old_id, new_id), got in zip(pairs, batch):
            want = engine.evaluate(old_index[old_id], new_index[new_id], delta)
            assert got.value == want.value, (old_id, new_id, got, want)
            assert got.kind == want.kind, (old_id, new_id, got, want)

    def test_chunk_results_are_plain_floats(self):
        """Workers pickle results back; numpy scalars must not leak."""
        old = [person_record_with(record_id="o0")]
        new = [person_record_with(record_id="n0")]
        sim_func = build_similarity_function(
            list(WEIGHT_SPECS["omega2-qgram"]), 0.7
        )
        kernel = BatchScoringKernel(sim_func, old, new)
        scores = kernel.agg_sim_chunk([("o0", "n0")])
        assert type(scores[0]) is float
        outcomes = kernel.evaluate_chunk([("o0", "n0")], 0.7)
        assert type(outcomes[0].value) is float
        assert isinstance(outcomes[0].kind, str)

    def test_kernel_pickles_for_worker_shipping(self):
        series = generate_pair(seed=7, initial_households=5)
        old, new = series.datasets
        old_records = list(old.records.values())
        new_records = list(new.records.values())
        sim_func = build_similarity_function(
            list(WEIGHT_SPECS["omega2-qgram"]), 0.7
        )
        kernel = BatchScoringKernel(
            sim_func, old_records, new_records, filtering=FilteringConfig()
        )
        clone = pickle.loads(pickle.dumps(kernel))
        pairs = cross_pairs(old_records[:4], new_records[:4])
        assert clone.agg_sim_chunk(pairs) == kernel.agg_sim_chunk(pairs)
        assert (
            clone.evaluate_chunk(pairs, 0.7) == kernel.evaluate_chunk(pairs, 0.7)
        )


# -- configuration plumbing and the no-numpy fallback ------------------------


class TestBackendPlumbing:
    def test_backend_constants_cover_config_choices(self):
        assert SCORING_BACKENDS == (BACKEND_PYTHON, BACKEND_VECTORIZED)
        assert LinkageConfig().scoring_backend == BACKEND_VECTORIZED

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="scoring_backend"):
            LinkageConfig(scoring_backend="fortran")

    def test_python_backend_builds_no_kernel(self):
        config = LinkageConfig(scoring_backend="python")
        sim_func = config.build_sim_func()
        assert config.build_scoring_kernel(sim_func, [], []) is None

    @needs_numpy
    def test_vectorized_backend_builds_kernel(self):
        config = LinkageConfig(scoring_backend="vectorized")
        sim_func = config.build_sim_func()
        kernel = config.build_scoring_kernel(sim_func, [], [])
        assert isinstance(kernel, BatchScoringKernel)

    def test_no_numpy_falls_back_to_reference_path(self, monkeypatch):
        """Without numpy, scoring_backend='vectorized' silently takes the
        per-pair path: build returns None, the pipeline still links, and
        the result matches the explicit python backend exactly."""
        import repro.core.kernel as kernel_mod

        monkeypatch.setattr(kernel_mod, "HAVE_NUMPY", False)
        assert not kernel_mod.kernel_available()
        assert build_scoring_kernel(None, [], []) is None

        series = generate_pair(seed=7, initial_households=10)
        old, new = series.datasets
        fallback = link_datasets(
            old, new, LinkageConfig(scoring_backend="vectorized")
        )
        monkeypatch.undo()
        reference = link_datasets(
            old, new, LinkageConfig(scoring_backend="python")
        )
        assert sorted(fallback.record_mapping.pairs()) == sorted(
            reference.record_mapping.pairs()
        )
        assert sorted(fallback.group_mapping.pairs()) == sorted(
            reference.group_mapping.pairs()
        )
        assert fallback.profile.value(KERNEL_BATCHES) == 0
        assert fallback.profile.value(KERNEL_PAIRS) == 0

    @needs_numpy
    def test_kernel_counters_track_batched_share(self):
        """The vectorized run reports how much scoring the kernel
        absorbed; the python run reports none."""
        series = generate_pair(seed=7, initial_households=10)
        old, new = series.datasets
        vectorized = link_datasets(
            old, new, LinkageConfig(scoring_backend="vectorized")
        )
        python = link_datasets(
            old, new, LinkageConfig(scoring_backend="python")
        )
        assert vectorized.profile.value(KERNEL_BATCHES) > 0
        assert vectorized.profile.value(KERNEL_PAIRS) > 0
        assert python.profile.value(KERNEL_BATCHES) == 0
        assert python.profile.value(KERNEL_PAIRS) == 0
        # The kernel changes effort accounting not at all: both backends
        # scored the same pairs.
        assert vectorized.profile.value("pairs_scored") == \
            python.profile.value("pairs_scored")
