"""Filter-soundness battery for the candidate-pruning engine.

The engine (:mod:`repro.core.filtering`) may reject a candidate pair
only from an *upper bound* on its similarity — so the load-bearing
property, checked here exhaustively with hypothesis, is that every bound
dominates the true value:

* length bound ≥ Levenshtein (and Damerau) similarity,
* q-gram count bound ≥ q-gram Dice similarity,
* the composed weighted bound ≥ ``agg_sim`` for every missing policy,
* every pruning decision of ``evaluate`` is lossless: a pruned pair's
  true ``agg_sim`` is below the δ it was pruned against, and a surviving
  pair's score is **bit-identical** to ``SimilarityFunction.agg_sim``.

These properties gate the tentpole: if any of them fails, the pruning
engine is not lossless and must not ship.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtering import (
    KIND_EXACT,
    PRUNED_EARLY_EXIT,
    PRUNED_LENGTH,
    PRUNED_QGRAM,
    CandidateFilter,
    FilteringConfig,
    length_similarity_bound,
    normalised_length,
    qgram_count,
    qgram_count_bound,
)
from repro.similarity.levenshtein import damerau_similarity, levenshtein_similarity
from repro.similarity.qgram import qgram_similarity, qgrams
from repro.similarity.vector import (
    MISSING_IGNORE,
    MISSING_NEUTRAL,
    MISSING_ZERO,
    build_similarity_function,
)
from tests.strategies import names, record_pairs

#: Float slack for bounds composed with a different summation order than
#: the true value (the engine prunes only below δ - its margin, 1e-9).
MARGIN = 1e-9

#: Weight specs exercising every comparator class the engine knows.
WEIGHT_SPECS = {
    "omega2-qgram": (
        ("first_name", "qgram", 0.4),
        ("sex", "exact", 0.2),
        ("surname", "qgram", 0.2),
        ("address", "qgram", 0.1),
        ("occupation", "qgram", 0.1),
    ),
    "levenshtein-mix": (
        ("first_name", "levenshtein", 0.3),
        ("surname", "levenshtein", 0.3),
        ("sex", "exact", 0.2),
        ("address", "qgram", 0.2),
    ),
    "trigram-opaque-mix": (
        ("first_name", "trigram", 0.4),
        ("surname", "jaro_winkler", 0.4),  # no cheap bound: opaque
        ("sex", "exact", 0.2),
    ),
}

deltas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
policies = st.sampled_from((MISSING_ZERO, MISSING_NEUTRAL, MISSING_IGNORE))
spec_keys = st.sampled_from(sorted(WEIGHT_SPECS))


# -- scalar bounds vs true comparators ---------------------------------------


class TestScalarBounds:
    @given(names, names)
    def test_length_bound_dominates_levenshtein(self, left, right):
        assert length_similarity_bound(left, right) >= \
            levenshtein_similarity(left, right)

    @given(names, names)
    def test_length_bound_dominates_damerau(self, left, right):
        """The bound only uses |len(a)-len(b)|, which lower-bounds the
        Damerau distance too (transpositions preserve length)."""
        assert length_similarity_bound(left, right) >= \
            damerau_similarity(left, right)

    @given(names, names)
    def test_length_bound_in_unit_interval(self, left, right):
        assert 0.0 <= length_similarity_bound(left, right) <= 1.0

    @given(
        names,
        st.integers(min_value=1, max_value=4),
        st.booleans(),
    )
    def test_qgram_count_matches_materialised_grams(self, text, q, padded):
        """The closed-form count equals what qgrams() actually emits —
        the premise of the whole count filter."""
        assert qgram_count(text, q, padded) == len(qgrams(text, q, padded))

    @given(names, names, st.integers(min_value=1, max_value=4), st.booleans())
    def test_qgram_count_bound_dominates_dice(self, left, right, q, padded):
        bound = qgram_count_bound(left, right, q, padded)
        assert 0.0 <= bound <= 1.0
        assert bound >= qgram_similarity(left, right, q, padded, mode="dice")

    @given(names)
    def test_normalised_length_matches_comparator_normalisation(self, text):
        assert normalised_length(text) == len(" ".join(text.lower().split()))


# -- composed pair bound vs agg_sim ------------------------------------------


class TestUpperBound:
    @given(record_pairs(), spec_keys, policies)
    @settings(max_examples=200)
    def test_upper_bound_dominates_agg_sim(self, pair, spec_key, policy):
        old, new = pair
        sim_func = build_similarity_function(
            list(WEIGHT_SPECS[spec_key]), 0.7, policy
        )
        engine = CandidateFilter(sim_func)
        assert engine.upper_bound(old, new) + MARGIN >= \
            sim_func.agg_sim(old, new)

    @given(record_pairs(), spec_keys, policies, st.integers(0, 14))
    @settings(max_examples=200)
    def test_upper_bound_sound_under_every_filter_subset(
        self, pair, spec_key, policy, mask
    ):
        """Disabling individual filters only loosens bounds, never below
        the true similarity."""
        old, new = pair
        sim_func = build_similarity_function(
            list(WEIGHT_SPECS[spec_key]), 0.7, policy
        )
        config = FilteringConfig(
            length_filter=bool(mask & 1),
            qgram_filter=bool(mask & 2),
            exact_shortcircuit=bool(mask & 4),
            early_exit=bool(mask & 8),
        )
        engine = CandidateFilter(sim_func, config)
        assert engine.upper_bound(old, new) + MARGIN >= \
            sim_func.agg_sim(old, new)


# -- evaluate(): the actual pruning decision ---------------------------------


class TestEvaluateLossless:
    @given(record_pairs(), spec_keys, policies, deltas)
    @settings(max_examples=300)
    def test_exact_outcomes_are_bit_identical(
        self, pair, spec_key, policy, delta
    ):
        """A surviving pair's score must equal agg_sim to the last bit —
        that is what makes filtered mappings byte-identical."""
        old, new = pair
        sim_func = build_similarity_function(
            list(WEIGHT_SPECS[spec_key]), delta, policy
        )
        outcome = CandidateFilter(sim_func).evaluate(old, new, delta)
        if outcome.is_exact:
            assert outcome.value == sim_func.agg_sim(old, new)

    @given(record_pairs(), spec_keys, policies, deltas)
    @settings(max_examples=300)
    def test_pruned_outcomes_are_lossless(
        self, pair, spec_key, policy, delta
    ):
        """A pruned pair could never have matched: its bound dominates
        the true similarity and sits below δ by more than the margin."""
        old, new = pair
        sim_func = build_similarity_function(
            list(WEIGHT_SPECS[spec_key]), delta, policy
        )
        engine = CandidateFilter(sim_func)
        outcome = engine.evaluate(old, new, delta)
        if outcome.is_exact:
            return
        true_value = sim_func.agg_sim(old, new)
        assert outcome.kind in (PRUNED_LENGTH, PRUNED_QGRAM, PRUNED_EARLY_EXIT)
        assert outcome.value < delta - engine.margin
        assert outcome.value + MARGIN >= true_value
        assert true_value < delta  # the pair would have been rejected anyway

    @given(record_pairs(), spec_keys, policies)
    @settings(max_examples=100)
    def test_delta_zero_never_prunes(self, pair, spec_key, policy):
        """At δ=0 everything matches, so nothing may be pruned."""
        old, new = pair
        sim_func = build_similarity_function(
            list(WEIGHT_SPECS[spec_key]), 0.0, policy
        )
        outcome = CandidateFilter(sim_func).evaluate(old, new, 0.0)
        assert outcome.kind == KIND_EXACT

    @given(record_pairs(), spec_keys, policies, deltas, st.integers(0, 14))
    @settings(max_examples=200)
    def test_filter_subsets_stay_lossless(
        self, pair, spec_key, policy, delta, mask
    ):
        """Every ablation (any subset of the four filters) keeps the
        exact/pruned dichotomy sound."""
        old, new = pair
        sim_func = build_similarity_function(
            list(WEIGHT_SPECS[spec_key]), delta, policy
        )
        config = FilteringConfig(
            length_filter=bool(mask & 1),
            qgram_filter=bool(mask & 2),
            exact_shortcircuit=bool(mask & 4),
            early_exit=bool(mask & 8),
        )
        outcome = CandidateFilter(sim_func, config).evaluate(old, new, delta)
        true_value = sim_func.agg_sim(old, new)
        if outcome.is_exact:
            assert outcome.value == true_value
        else:
            assert true_value < delta


# -- configuration plumbing --------------------------------------------------


class TestFilteringConfig:
    def test_coerce_accepts_bool_and_strings(self):
        assert FilteringConfig.coerce(True).enabled
        assert FilteringConfig.coerce("on").enabled
        assert not FilteringConfig.coerce(False).enabled
        assert not FilteringConfig.coerce("off").enabled
        assert not FilteringConfig.coerce(None).enabled
        explicit = FilteringConfig(early_exit=False)
        assert FilteringConfig.coerce(explicit) is explicit

    def test_coerce_rejects_garbage(self):
        with pytest.raises(ValueError):
            FilteringConfig.coerce("sometimes")
        with pytest.raises(ValueError):
            FilteringConfig.coerce(3)

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            FilteringConfig(margin=-1e-3)

    def test_pickled_engine_keeps_config_drops_memos(self):
        import pickle

        sim_func = build_similarity_function(
            list(WEIGHT_SPECS["omega2-qgram"]), 0.7
        )
        engine = CandidateFilter(sim_func, FilteringConfig(margin=1e-6))
        engine._norm_length(0, "warm-up value")
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.config == engine.config
        assert all(not memo for memo in clone._length_memo)
