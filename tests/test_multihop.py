"""Tests for multi-hop temporal linkage (non-adjacent censuses)."""

import pytest

from repro.core.config import LinkageConfig
from repro.evaluation.metrics import evaluate_mapping
from repro.evolution.multihop import (
    ConsistencyReport,
    compose_mappings,
    consistency_report,
    direct_mapping,
    link_series_multihop,
    reconciled_mapping,
)
from repro.model.mappings import RecordMapping


class TestCompose:
    def test_two_hop_chain(self):
        first = RecordMapping([("a1", "b1"), ("a2", "b2")])
        second = RecordMapping([("b1", "c1")])
        composed = compose_mappings([first, second])
        assert composed.pairs() == [("a1", "c1")]

    def test_single_mapping_copied(self):
        mapping = RecordMapping([("a", "b")])
        composed = compose_mappings([mapping])
        assert composed == mapping
        assert composed is not mapping

    def test_broken_chain_drops_record(self):
        first = RecordMapping([("a1", "b1")])
        second = RecordMapping([("b9", "c9")])
        assert len(compose_mappings([first, second])) == 0

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            compose_mappings([])

    def test_composition_stays_one_to_one(self):
        first = RecordMapping([("a1", "b1"), ("a2", "b2")])
        second = RecordMapping([("b1", "c1"), ("b2", "c2")])
        composed = compose_mappings([first, second])
        pairs = composed.pairs()
        assert len({o for o, _ in pairs}) == len(pairs)


class TestConsistency:
    def test_report_counts(self):
        composed = RecordMapping([("a", "x"), ("b", "y"), ("c", "z")])
        direct = RecordMapping([("a", "x"), ("b", "q"), ("d", "w")])
        report = consistency_report(composed, direct)
        assert report.agreeing == 1
        assert report.conflicting == 1
        assert report.only_composed == 1
        assert report.only_direct == 1
        assert report.agreement_rate == pytest.approx(0.5)

    def test_agreement_rate_with_no_overlap(self):
        report = consistency_report(
            RecordMapping([("a", "x")]), RecordMapping([("b", "y")])
        )
        assert report.agreement_rate == 1.0


class TestReconcile:
    def test_composed_wins_conflicts(self):
        composed = RecordMapping([("a", "x")])
        direct = RecordMapping([("a", "y"), ("b", "z")])
        merged = reconciled_mapping(composed, direct)
        assert merged.get_new("a") == "x"
        assert merged.get_new("b") == "z"

    def test_direct_preference(self):
        composed = RecordMapping([("a", "x")])
        direct = RecordMapping([("a", "y")])
        merged = reconciled_mapping(composed, direct, prefer="direct")
        assert merged.get_new("a") == "y"

    def test_invalid_preference(self):
        with pytest.raises(ValueError):
            reconciled_mapping(RecordMapping(), RecordMapping(), prefer="best")


class TestEndToEnd:
    def test_direct_mapping_adjusts_year_gap(self, small_series):
        first, _, third = small_series.datasets
        mapping = direct_mapping(first, third, LinkageConfig())
        truth = small_series.ground_truth.record_mapping(first.year, third.year)
        quality = evaluate_mapping(mapping, truth)
        assert quality.precision > 0.7

    def test_direct_mapping_rejects_wrong_order(self, small_series):
        first, _, third = small_series.datasets
        with pytest.raises(ValueError):
            direct_mapping(third, first)

    def test_multihop_beats_or_matches_composition_recall(self, small_series):
        datasets = small_series.datasets
        truth = small_series.ground_truth.record_mapping(
            datasets[0].year, datasets[-1].year
        )
        merged, report = link_series_multihop(datasets)
        merged_quality = evaluate_mapping(merged, truth)

        pairwise = [
            direct_mapping(old, new)
            for old, new in zip(datasets, datasets[1:])
        ]
        composed_quality = evaluate_mapping(compose_mappings(pairwise), truth)
        assert merged_quality.recall >= composed_quality.recall - 1e-9
        assert isinstance(report, ConsistencyReport)
        assert report.agreement_rate > 0.7

    def test_requires_two_datasets(self, small_series):
        with pytest.raises(ValueError):
            link_series_multihop(small_series.datasets[:1])
