"""Integration tests for the full iterative pipeline (Algorithm 1)."""

import pytest

from repro.core.config import LinkageConfig
from repro.core.pipeline import IterativeGroupLinkage, link_datasets
from repro.evaluation.metrics import evaluate_mapping


class TestRunningExample:
    def test_safe_links_found(self, census_1871, census_1881, example_config):
        result = link_datasets(census_1871, census_1881, example_config)
        expected_safe = {
            ("1871_1", "1881_1"),
            ("1871_2", "1881_2"),
            ("1871_4", "1881_3"),
            ("1871_6", "1881_4"),
            ("1871_7", "1881_5"),
            ("1871_8", "1881_6"),
        }
        assert expected_safe <= set(result.record_mapping.pairs())

    def test_alice_recovered_by_remaining_pass(
        self, census_1871, census_1881, example_config
    ):
        """Alice Ashworth -> Alice Smith: surname changed by marriage,
        only the relaxed attribute pass can find her."""
        result = link_datasets(census_1871, census_1881, example_config)
        assert result.record_mapping.get_new("1871_3") == "1881_7"

    def test_decoy_household_not_linked(
        self, census_1871, census_1881, example_config
    ):
        """Household d81 mimics a71's attributes; edge similarity must
        route the link to a81 instead (the paper's headline example)."""
        result = link_datasets(census_1871, census_1881, example_config)
        assert ("a71", "a81") in result.group_mapping
        assert ("a71", "d81") not in result.group_mapping

    def test_john_riley_unlinked(self, census_1871, census_1881, example_config):
        result = link_datasets(census_1871, census_1881, example_config)
        assert not result.record_mapping.contains_old("1871_5")

    def test_mary_unlinked(self, census_1871, census_1881, example_config):
        result = link_datasets(census_1871, census_1881, example_config)
        assert not result.record_mapping.contains_new("1881_8")

    def test_group_links_of_running_example(
        self, census_1871, census_1881, example_config
    ):
        """§2: four group links — both preserved households plus the two
        marriage-induced links into household c."""
        result = link_datasets(census_1871, census_1881, example_config)
        assert set(result.group_mapping.pairs()) == {
            ("a71", "a81"),
            ("b71", "b81"),
            ("a71", "c81"),
            ("b71", "c81"),
        }

    def test_iteration_stats_recorded(
        self, census_1871, census_1881, example_config
    ):
        result = link_datasets(census_1871, census_1881, example_config)
        assert result.iterations
        deltas = [stats.delta for stats in result.iterations]
        assert deltas == sorted(deltas, reverse=True)
        assert result.iterations[0].delta == pytest.approx(0.7)

    def test_links_split_between_phases(
        self, census_1871, census_1881, example_config
    ):
        result = link_datasets(census_1871, census_1881, example_config)
        assert result.subgraph_record_links == 5
        assert result.remaining_record_links == 2  # Alice and Steve


class TestMappingInvariants:
    def test_record_mapping_is_one_to_one(self, small_pair):
        old, new = small_pair.datasets
        result = link_datasets(old, new, LinkageConfig())
        pairs = result.record_mapping.pairs()
        assert len({o for o, _ in pairs}) == len(pairs)
        assert len({n for _, n in pairs}) == len(pairs)

    def test_all_linked_ids_exist(self, small_pair):
        old, new = small_pair.datasets
        result = link_datasets(old, new, LinkageConfig())
        for old_id, new_id in result.record_mapping:
            assert old_id in old.records
            assert new_id in new.records
        for old_group, new_group in result.group_mapping:
            assert old_group in old.households
            assert new_group in new.households

    def test_record_links_imply_group_links(self, small_pair):
        old, new = small_pair.datasets
        result = link_datasets(old, new, LinkageConfig())
        for old_id, new_id in result.record_mapping:
            pair = (
                old.record(old_id).household_id,
                new.record(new_id).household_id,
            )
            assert pair in result.group_mapping

    def test_deterministic(self, small_pair):
        old, new = small_pair.datasets
        first = link_datasets(old, new, LinkageConfig())
        second = link_datasets(old, new, LinkageConfig())
        assert first.record_mapping == second.record_mapping
        assert first.group_mapping == second.group_mapping

    def test_quality_on_synthetic_pair(self, small_pair):
        old, new = small_pair.datasets
        truth = small_pair.ground_truth.record_mapping(old.year, new.year)
        result = link_datasets(old, new, LinkageConfig())
        quality = evaluate_mapping(result.record_mapping, truth)
        assert quality.precision > 0.85
        assert quality.recall > 0.75


class TestConfigurationVariants:
    def test_non_iterative_single_round(self, small_pair):
        old, new = small_pair.datasets
        result = link_datasets(old, new, LinkageConfig().non_iterative())
        assert len(result.iterations) == 1

    def test_stop_on_empty_round(self, census_1871, census_1881):
        config = LinkageConfig(blocking="cross", stop_on_empty_round=True)
        result = link_datasets(census_1871, census_1881, config)
        # Round 2 (δ=0.65) finds nothing new, so the loop stops there.
        assert len(result.iterations) < len(config.threshold_schedule())

    def test_linker_class_equivalent_to_helper(self, census_1871, census_1881,
                                               example_config):
        by_class = IterativeGroupLinkage(example_config).link(
            census_1871, census_1881
        )
        by_helper = link_datasets(census_1871, census_1881, example_config)
        assert by_class.record_mapping == by_helper.record_mapping

    def test_result_counts(self, census_1871, census_1881, example_config):
        result = link_datasets(census_1871, census_1881, example_config)
        assert result.num_record_links == len(result.record_mapping)
        assert result.num_group_links == len(result.group_mapping)

    def test_empty_datasets(self):
        from repro.model.dataset import CensusDataset

        result = link_datasets(
            CensusDataset(1871), CensusDataset(1881), LinkageConfig()
        )
        assert result.num_record_links == 0
        assert result.num_group_links == 0
