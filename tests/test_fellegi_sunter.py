"""Tests for the Fellegi-Sunter baseline and its EM estimator."""

import math

import pytest

from repro.baselines.fellegi_sunter import (
    FellegiSunterLinkage,
    FellegiSunterParams,
    expectation_maximisation,
)
from repro.blocking.standard import CrossProductBlocker
from repro.core.config import OMEGA2
from repro.evaluation.metrics import evaluate_mapping
from repro.similarity.vector import build_similarity_function

SIM = build_similarity_function(list(OMEGA2), 0.5)


class TestParams:
    def make(self):
        return FellegiSunterParams(
            m_probabilities=[0.9, 0.8],
            u_probabilities=[0.1, 0.4],
            match_prevalence=0.05,
            iterations=10,
        )

    def test_agreement_weight_positive(self):
        params = self.make()
        assert params.agreement_weight(0) > 0
        assert params.agreement_weight(0) == pytest.approx(math.log2(9))

    def test_disagreement_weight_negative(self):
        params = self.make()
        assert params.disagreement_weight(0) < 0

    def test_pattern_weight_monotone_in_agreements(self):
        params = self.make()
        assert params.pattern_weight((1, 1)) > params.pattern_weight((1, 0))
        assert params.pattern_weight((1, 0)) > params.pattern_weight((0, 0))


class TestEM:
    def test_recovers_two_clear_classes(self):
        # 1000 "non-matches" disagreeing everywhere, 50 "matches"
        # agreeing everywhere, some mixed noise.
        patterns = [(0, 0), (1, 1), (1, 0), (0, 1)]
        counts = [1000, 50, 30, 20]
        params = expectation_maximisation(patterns, counts, 2)
        assert params.m_probabilities[0] > params.u_probabilities[0]
        assert params.m_probabilities[1] > params.u_probabilities[1]
        assert params.pattern_weight((1, 1)) > params.pattern_weight((0, 0))

    def test_prevalence_bounded(self):
        params = expectation_maximisation([(1,), (0,)], [10, 10], 1)
        assert 0.0 < params.match_prevalence <= 0.5

    def test_fix_u_keeps_initial_values(self):
        params = expectation_maximisation(
            [(0, 0), (1, 1)], [100, 10], 2,
            initial_u=[0.2, 0.3], fix_u=True,
        )
        assert params.u_probabilities == [0.2, 0.3]

    def test_empty_patterns_rejected(self):
        with pytest.raises(ValueError):
            expectation_maximisation([], [], 2)

    def test_m_clamped_above_u(self):
        params = expectation_maximisation(
            [(1, 0), (0, 1)], [50, 50], 2, enforce_m_above_u=True
        )
        for m, u in zip(params.m_probabilities, params.u_probabilities):
            assert m >= u


class TestLinkage:
    def test_running_example(self, census_1871, census_1881):
        linkage = FellegiSunterLinkage(SIM, blocker=CrossProductBlocker())
        result = linkage.link(census_1871, census_1881)
        assert linkage.params_ is not None
        # The clear Smith matches should be found.
        assert ("1871_6", "1881_4") in result.record_mapping

    def test_one_to_one(self, small_pair):
        old, new = small_pair.datasets
        result = FellegiSunterLinkage(SIM).link(old, new)
        pairs = result.record_mapping.pairs()
        assert len({o for o, _ in pairs}) == len(pairs)
        assert len({n for _, n in pairs}) == len(pairs)

    def test_quality_reasonable_but_below_iter_sub(self, small_pair):
        from repro.core import LinkageConfig, link_datasets

        old, new = small_pair.datasets
        truth = small_pair.ground_truth.record_mapping(old.year, new.year)
        fs_quality = evaluate_mapping(
            FellegiSunterLinkage(SIM).link(old, new).record_mapping, truth
        )
        our_quality = evaluate_mapping(
            link_datasets(old, new, LinkageConfig()).record_mapping, truth
        )
        assert fs_quality.f_measure > 0.6
        assert our_quality.f_measure >= fs_quality.f_measure - 0.02

    def test_age_filter_respected(self, census_1871, census_1881):
        linkage = FellegiSunterLinkage(SIM, blocker=CrossProductBlocker())
        result = linkage.link(census_1871, census_1881)
        assert not result.record_mapping.contains_new("1881_8")  # baby Mary

    def test_custom_weight_threshold(self, small_pair):
        old, new = small_pair.datasets
        strict = FellegiSunterLinkage(SIM, min_match_weight=1000.0)
        assert len(strict.link(old, new).record_mapping) == 0

    def test_empty_candidates(self):
        from repro.model.dataset import CensusDataset

        result = FellegiSunterLinkage(SIM).link(
            CensusDataset(1871), CensusDataset(1881)
        )
        assert len(result.record_mapping) == 0

    def test_deterministic(self, small_pair):
        old, new = small_pair.datasets
        first = FellegiSunterLinkage(SIM).link(old, new)
        second = FellegiSunterLinkage(SIM).link(old, new)
        assert first.record_mapping == second.record_mapping
