"""Property-based tests for the dirty-key engine of incremental
re-linkage (:mod:`repro.checkpoint.series`).

The central claims, over arbitrary valid datasets and arbitrary
single-record edits:

* **soundness** — every blocking key whose candidate set could have
  been affected by the edit is dirty (the key held the record before
  the edit, or holds it after);
* **minimality** — *only* such keys are dirty: an edit never
  invalidates a key the edited record touches in neither version, so
  unrelated similarity knowledge survives every revision;
* **no-op exactness** — an edit that leaves the record row unchanged
  dirties nothing at all.

A limited-example pipeline property then closes the loop: under random
single edits to the middle snapshot, warm incremental analysis pins the
same decisions ledger as a from-scratch run.
"""

import functools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import analysis_ledger_hash
from repro.checkpoint.series import (
    blocking_key_fingerprints,
    dirty_keys,
    dirty_record_ids,
)
from repro.core.config import LinkageConfig
from repro.datagen import revise_records
from repro.datagen.generator import GeneratorConfig, generate_series
from repro.evolution.analysis import analyse_series

from tests.strategies import census_datasets

CONFIG = LinkageConfig()

#: (attribute, value strategy) pool for drawn single-record edits.
#: surname/address feed blocking keys (edits move the record between
#: keys); age/occupation/first_name only change row content (the record
#: stays put but its keys' fingerprints must still change).
EDIT_FIELDS = (
    ("surname", st.text("abcdefgh", min_size=0, max_size=8)),
    ("address", st.text("abcdefgh ", min_size=0, max_size=12)),
    ("first_name", st.text("abcdefgh", min_size=0, max_size=8)),
    ("occupation", st.one_of(st.none(), st.text("abcdef", min_size=1, max_size=8))),
    ("age", st.integers(min_value=0, max_value=90)),
)


@st.composite
def dataset_and_edit(draw):
    """(dataset, record_id, field, value): one drawn single-record edit."""
    dataset = draw(census_datasets(min_households=1, max_households=4))
    record_ids = sorted(dataset.record_ids)
    record_id = draw(st.sampled_from(record_ids))
    field, value_st = draw(st.sampled_from(EDIT_FIELDS))
    return dataset, record_id, field, draw(value_st)


def keys_of(keys, record_id):
    return {key for key, members in keys.items() if record_id in members}


class TestDirtyKeyProperties:
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(dataset_and_edit())
    def test_dirty_keys_sound_and_minimal(self, example):
        """dirty == keys touching the edited record (before ∪ after);
        a no-op edit dirties nothing."""
        dataset, record_id, field, value = example
        revised = revise_records(dataset, {record_id: {field: value}})

        before_keys, before_fps = blocking_key_fingerprints(dataset, CONFIG)
        after_keys, after_fps = blocking_key_fingerprints(revised, CONFIG)
        dirty = dirty_keys(before_fps, after_fps)

        if getattr(dataset.record(record_id), field) == value:
            assert dirty == set()
            return
        expected = keys_of(before_keys, record_id) | keys_of(
            after_keys, record_id
        )
        assert dirty == expected
        # The dirtied records always include the edited one, and every
        # dirty record shares a current key with it — no unrelated
        # record is ever re-scored because of this edit.
        records = dirty_record_ids(after_keys, dirty)
        assert record_id in records
        for other in records:
            assert keys_of(after_keys, other) & dirty

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(census_datasets(min_households=1, max_households=4))
    def test_identity_edit_is_clean(self, dataset):
        """Fingerprinting is deterministic: a dataset diffed against a
        rebuilt copy of itself has zero dirty keys."""
        _, first = blocking_key_fingerprints(dataset, CONFIG)
        rebuilt = revise_records(dataset, {})
        _, second = blocking_key_fingerprints(rebuilt, CONFIG)
        assert dirty_keys(first, second) == set()


@functools.lru_cache(maxsize=1)
def _pipeline_series():
    return generate_series(
        GeneratorConfig(seed=7, num_snapshots=3, initial_households=10)
    ).datasets


class TestPipelineProperty:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_incremental_matches_scratch_under_random_edit(
        self, tmp_path_factory, data
    ):
        """Warm incremental re-analysis after a random single-record
        edit to the middle snapshot pins the scratch decisions ledger."""
        datasets = list(_pipeline_series())
        middle = datasets[1]
        record_id = data.draw(
            st.sampled_from(sorted(middle.record_ids)), label="record"
        )
        field, value_st = data.draw(st.sampled_from(EDIT_FIELDS[:3]),
                                    label="field")
        value = data.draw(value_st, label="value")
        revised = list(datasets)
        revised[1] = revise_records(middle, {record_id: {field: value}})

        store = tmp_path_factory.mktemp("series-state")
        analyse_series(datasets, config=CONFIG, series_state=str(store))
        incremental = analyse_series(
            revised, config=CONFIG, series_state=str(store)
        )
        scratch = analyse_series(revised, config=CONFIG)
        assert analysis_ledger_hash(incremental) == analysis_ledger_hash(
            scratch
        )
