"""Tests for the record corruption (data-quality noise) channels."""

import random

import pytest

from repro.datagen.corruption import (
    SPELLING_VARIANTS,
    CorruptionParams,
    RecordCorruptor,
)


def corruptor(seed=1, params=None):
    return RecordCorruptor(random.Random(seed), params)


class TestTypo:
    def test_typo_changes_string(self):
        noisy = corruptor()
        changed = 0
        for _ in range(50):
            if noisy.typo("ashworth") != "ashworth":
                changed += 1
        assert changed > 40  # a typo nearly always alters the string

    def test_typo_never_empties(self):
        noisy = corruptor(2)
        for _ in range(200):
            assert noisy.typo("ab")

    def test_typo_on_empty_string(self):
        assert corruptor().typo("") == ""

    def test_typo_length_within_one(self):
        noisy = corruptor(3)
        for _ in range(200):
            result = noisy.typo("elizabeth")
            assert abs(len(result) - len("elizabeth")) <= 1


class TestCorruptString:
    def test_zero_rates_identity(self):
        params = CorruptionParams(missing_rates={}, typo_rates={})
        noisy = corruptor(1, params)
        assert noisy.corrupt_string("ashworth", "surname") == "ashworth"

    def test_missing_rate_one_drops_value(self):
        params = CorruptionParams(
            missing_rates={"surname": 1.0}, typo_rates={}
        )
        assert corruptor(1, params).corrupt_string("x", "surname") is None

    def test_typo_rate_one_always_alters(self):
        params = CorruptionParams(
            missing_rates={}, typo_rates={"surname": 1.0}, variant_rate=0.0
        )
        noisy = corruptor(5, params)
        results = {noisy.corrupt_string("ashworth", "surname") for _ in range(30)}
        assert "ashworth" not in results

    def test_variants_applied(self):
        params = CorruptionParams(
            missing_rates={}, typo_rates={"surname": 1.0}, variant_rate=1.0
        )
        noisy = corruptor(6, params)
        assert noisy.corrupt_string("smith", "surname") == SPELLING_VARIANTS["smith"]

    def test_none_input_stays_none(self):
        assert corruptor().corrupt_string(None, "surname") is None


class TestCorruptAge:
    def test_zero_rates_identity(self):
        params = CorruptionParams(
            missing_rates={}, age_error_one=0.0, age_error_two=0.0,
            age_rounding=0.0,
        )
        assert corruptor(1, params).corrupt_age(34) == 34

    def test_error_one_shifts_by_one(self):
        params = CorruptionParams(
            missing_rates={}, age_error_one=1.0, age_error_two=0.0,
            age_rounding=0.0,
        )
        noisy = corruptor(2, params)
        results = {noisy.corrupt_age(30) for _ in range(50)}
        assert results <= {29, 31}

    def test_age_never_negative(self):
        params = CorruptionParams(
            missing_rates={}, age_error_one=0.0, age_error_two=1.0,
            age_rounding=0.0,
        )
        noisy = corruptor(3, params)
        for _ in range(50):
            assert noisy.corrupt_age(0) >= 0

    def test_rounding_to_five(self):
        params = CorruptionParams(
            missing_rates={}, age_error_one=0.0, age_error_two=0.0,
            age_rounding=1.0,
        )
        noisy = corruptor(4, params)
        assert noisy.corrupt_age(43) == 45
        assert noisy.corrupt_age(12) == 12  # only adults are rounded

    def test_missing_age(self):
        params = CorruptionParams(missing_rates={"age": 1.0})
        assert corruptor(5, params).corrupt_age(30) is None
        assert corruptor(5, params).corrupt_age(None) is None


class TestCorruptSex:
    def test_missing_sex(self):
        params = CorruptionParams(missing_rates={"sex": 1.0})
        assert corruptor(1, params).corrupt_sex("m") is None

    def test_sex_kept_otherwise(self):
        params = CorruptionParams(missing_rates={"sex": 0.0})
        assert corruptor(1, params).corrupt_sex("f") == "f"


class TestScaled:
    def test_scaling_multiplies_rates(self):
        base = CorruptionParams()
        doubled = base.scaled(2.0)
        assert doubled.missing_rates["occupation"] == pytest.approx(
            min(1.0, base.missing_rates["occupation"] * 2)
        )
        assert doubled.typo_rates["surname"] == pytest.approx(
            base.typo_rates["surname"] * 2
        )

    def test_scaling_clamps_at_one(self):
        assert CorruptionParams().scaled(1000).age_error_one == 1.0

    def test_zero_scale_disables_noise(self):
        silent = CorruptionParams().scaled(0.0)
        noisy = RecordCorruptor(random.Random(1), silent)
        assert noisy.corrupt_string("ashworth", "surname") == "ashworth"
        assert noisy.corrupt_age(30) == 30
