"""Tests for the on-disk columnar shard store
(:mod:`repro.sharding.store`).

The two contracts that matter downstream:

* **roundtrip byte-identity** — every field of every record, including
  ``None`` values and ``entity_id`` (which ``PersonRecord`` equality
  ignores), survives write → read in both formats;
* **format-independent fingerprints** — an ``npy`` store and a
  ``jsonl`` store of the same snapshot carry identical shard and
  snapshot fingerprints, so checkpoint binding never depends on the
  storage encoding.
"""

import json

import pytest

import repro.sharding.store as store_mod
from repro.datagen import generate_pair
from repro.datagen.country import CountryConfig, generate_country
from repro.model.records import PersonRecord
from repro.sharding import (
    HAVE_NUMPY,
    ShardStore,
    ShardStoreError,
    shard_fingerprint,
)

FIELDS = (
    "record_id", "household_id", "first_name", "surname", "sex",
    "age", "occupation", "address", "role", "entity_id",
)


def rows(records):
    return [
        tuple(getattr(record, field) for field in FIELDS)
        for record in records
    ]


@pytest.fixture(scope="module")
def country():
    return generate_country(
        CountryConfig(seed=5, regions=3, households_per_region=15)
    )


@pytest.fixture(scope="module")
def snapshot(country):
    return country.datasets[0]


FORMATS = ("npy", "jsonl") if HAVE_NUMPY else ("jsonl",)


class TestRoundtrip:
    @pytest.mark.parametrize("format", FORMATS)
    def test_field_identical(self, tmp_path, snapshot, format):
        store = ShardStore(tmp_path / format, format=format)
        store.write_dataset(snapshot)
        back = ShardStore(tmp_path / format)
        assert rows(back.iter_records(snapshot.year)) == rows(
            snapshot.iter_records()
        )

    @pytest.mark.parametrize("format", FORMATS)
    def test_none_values_survive(self, tmp_path, format):
        records = [
            PersonRecord("r1", "h1", "a", "b", None, None, None, None,
                         "head", None),
            PersonRecord("r2", "h1", "c", "d", "f", 30, "weaver",
                         "york st", "wife", "e7"),
        ]
        from repro.model.dataset import CensusDataset

        dataset = CensusDataset.from_records(1871, records)
        store = ShardStore(tmp_path / format, format=format)
        store.write_dataset(dataset)
        assert rows(ShardStore(tmp_path / format).iter_records(1871)) == rows(
            dataset.iter_records()
        )

    def test_read_dataset_equals_source(self, tmp_path, snapshot):
        store = ShardStore(tmp_path / "s")
        store.write_dataset(snapshot)
        rebuilt = store.read_dataset(snapshot.year)
        assert rows(rebuilt.iter_records()) == rows(snapshot.iter_records())

    def test_one_shard_per_region(self, tmp_path, country, snapshot):
        store = ShardStore(tmp_path / "s")
        store.write_dataset(snapshot)
        entries = store.shard_entries(snapshot.year)
        assert [entry["region"] for entry in entries] == sorted(
            country.regions
        )
        assert sum(entry["num_records"] for entry in entries) == len(
            snapshot
        )

    def test_non_namespaced_data_single_shard(self, tmp_path):
        series = generate_pair(seed=4, initial_households=10)
        dataset = series.datasets[0]
        store = ShardStore(tmp_path / "s")
        store.write_dataset(dataset)
        entries = store.shard_entries(dataset.year)
        assert len(entries) == 1 and entries[0]["region"] == ""


class TestFingerprints:
    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs both formats")
    def test_format_independent(self, tmp_path, snapshot):
        npy = ShardStore(tmp_path / "npy", format="npy")
        jsonl = ShardStore(tmp_path / "jsonl", format="jsonl")
        npy.write_dataset(snapshot)
        jsonl.write_dataset(snapshot)
        year = snapshot.year
        assert npy.snapshot_fingerprint(year) == jsonl.snapshot_fingerprint(
            year
        )
        assert [e["fingerprint"] for e in npy.shard_entries(year)] == [
            e["fingerprint"] for e in jsonl.shard_entries(year)
        ]

    def test_construction_order_invariant(self, snapshot):
        records = list(snapshot.iter_records())
        assert shard_fingerprint(records) == shard_fingerprint(
            list(reversed(records))
        )

    def test_content_sensitive(self, snapshot):
        records = list(snapshot.iter_records())
        import dataclasses

        tweaked = [dataclasses.replace(records[0], age=None)] + records[1:]
        assert shard_fingerprint(records) != shard_fingerprint(tweaked)


class TestNoNumpyFallback:
    def test_auto_format_is_jsonl(self, tmp_path, snapshot, monkeypatch):
        monkeypatch.setattr(store_mod, "HAVE_NUMPY", False)
        store = store_mod.ShardStore(tmp_path / "s")
        assert store.format == "jsonl"
        store.write_dataset(snapshot)
        assert rows(
            store_mod.ShardStore(tmp_path / "s").iter_records(snapshot.year)
        ) == rows(snapshot.iter_records())

    def test_npy_store_rejected_without_numpy(
        self, tmp_path, snapshot, monkeypatch
    ):
        if not HAVE_NUMPY:
            pytest.skip("needs numpy to write the npy store first")
        ShardStore(tmp_path / "s", format="npy").write_dataset(snapshot)
        monkeypatch.setattr(store_mod, "HAVE_NUMPY", False)
        with pytest.raises(ShardStoreError, match="numpy"):
            store_mod.ShardStore(tmp_path / "s")


class TestErrors:
    def test_unknown_format(self, tmp_path):
        with pytest.raises(ShardStoreError, match="format"):
            ShardStore(tmp_path, format="parquet")

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs a second format")
    def test_format_conflict(self, tmp_path, snapshot):
        ShardStore(tmp_path / "s", format="jsonl").write_dataset(snapshot)
        with pytest.raises(ShardStoreError, match="jsonl"):
            ShardStore(tmp_path / "s", format="npy")

    def test_missing_year(self, tmp_path, snapshot):
        store = ShardStore(tmp_path / "s")
        store.write_dataset(snapshot)
        with pytest.raises(ShardStoreError, match="no snapshot"):
            store.read_shard(1899, "shard_0000")

    def test_missing_shard(self, tmp_path, snapshot):
        store = ShardStore(tmp_path / "s")
        store.write_dataset(snapshot)
        with pytest.raises(ShardStoreError, match="no shard"):
            store.read_shard(snapshot.year, "shard_9999")

    def test_corrupt_manifest(self, tmp_path, snapshot):
        store = ShardStore(tmp_path / "s")
        store.write_dataset(snapshot)
        store.manifest_path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ShardStoreError, match="not valid JSON"):
            ShardStore(tmp_path / "s")

    def test_foreign_schema(self, tmp_path, snapshot):
        store = ShardStore(tmp_path / "s")
        store.write_dataset(snapshot)
        manifest = json.loads(store.manifest_path.read_text())
        manifest["schema"] = 999
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ShardStoreError, match="schema"):
            ShardStore(tmp_path / "s")

    @pytest.mark.skipif(not HAVE_NUMPY, reason="sentinel is npy-only")
    def test_reserved_sentinel_rejected(self, tmp_path):
        from repro.model.dataset import CensusDataset

        bad = PersonRecord(
            "r1", "h1", store_mod.NONE_STRING, "b", "m", 30, None, None,
            "head",
        )
        dataset = CensusDataset.from_records(1871, [bad])
        store = ShardStore(tmp_path / "s", format="npy")
        with pytest.raises(ShardStoreError, match="sentinel"):
            store.write_dataset(dataset)

    def test_no_manifest(self, tmp_path):
        store = ShardStore(tmp_path / "empty")
        assert store.years() == []
        with pytest.raises(ShardStoreError, match="manifest"):
            store.read_shard(1871, "shard_0000")
