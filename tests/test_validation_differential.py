"""Differential-equivalence harness: declared config equivalences hold."""

import dataclasses

import pytest

from repro.core.config import LinkageConfig
from repro.core.pipeline import link_datasets
from repro.datagen import generate_pair
from repro.validation.differential import (
    IDENTICAL,
    SUPERSET,
    EquivalenceViolation,
    MappingDiff,
    assert_equivalences,
    backend_default_vs_protocol,
    blocking_cross_covers_standard,
    blocking_standard_qgram_covers_standard,
    cache_bounded_vs_unbounded,
    compare_results,
    filtering_on_vs_off,
    indexed_vs_brute_force,
    run_differential,
    serial_vs_parallel,
    vectorized_vs_python,
)


@pytest.fixture(scope="module")
def workload():
    series = generate_pair(seed=7, initial_households=30)
    return series.datasets


class TestDeclaredEquivalences:
    def test_serial_vs_parallel_identity(self, workload):
        """Ports the serial-vs-parallel assertion of test_core_parallel.py
        onto the differential runner: workers 2 and 4 must match serial
        byte for byte, including round structure and scoring effort."""
        old, new = workload
        outcomes = serial_vs_parallel(old, new, workers=(2, 4))
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert outcome.ok, outcome.report()
            assert outcome.relation == IDENTICAL
            assert outcome.record_diff.is_identical
            assert outcome.group_diff.is_identical

    def test_cache_bounded_vs_unbounded_identity(self, workload):
        old, new = workload
        outcome = cache_bounded_vs_unbounded(old, new, bound=64)
        assert outcome.ok, outcome.report()
        assert outcome.variant_config.max_lazy_cache_entries == 64
        assert outcome.base_config.max_lazy_cache_entries == 0

    def test_blocking_cross_covers_standard(self, workload):
        old, new = workload
        outcome = blocking_cross_covers_standard(old, new)
        assert outcome.ok, outcome.report()
        assert outcome.relation == SUPERSET

    def test_blocking_standard_qgram_covers_standard(self, workload):
        old, new = workload
        outcome = blocking_standard_qgram_covers_standard(old, new)
        assert outcome.ok, outcome.report()
        assert outcome.relation == SUPERSET

    def test_filtering_on_vs_off_serial_and_parallel(self, workload):
        """The tentpole's acceptance check: pruning on produces mappings
        byte-identical to pruning off, serially and with 2 workers."""
        old, new = workload
        outcomes = filtering_on_vs_off(old, new, workers=(1, 2))
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert outcome.ok, outcome.report()
            assert outcome.relation == IDENTICAL
            assert outcome.record_diff.is_identical
            assert outcome.group_diff.is_identical

    def test_indexed_vs_brute_force_identity(self, workload):
        """The group-stage acceptance check: inverted-index candidate
        enumeration matches the |G_i| x |G_{i+1}| reference scan byte for
        byte, down to the scoring effort."""
        old, new = workload
        outcome = indexed_vs_brute_force(old, new)
        assert outcome.ok, outcome.report()
        assert outcome.relation == IDENTICAL
        assert outcome.base_config.group_pair_indexing
        assert not outcome.variant_config.group_pair_indexing

    def test_vectorized_vs_python_serial_and_parallel(self, workload):
        """PR 6 acceptance check: the batch scoring kernel yields
        mappings, round structure and scoring effort byte-identical to
        the per-pair reference backend, serially and with 2 workers."""
        old, new = workload
        outcomes = vectorized_vs_python(old, new, workers=(1, 2))
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert outcome.ok, outcome.report()
            assert outcome.relation == IDENTICAL
            assert outcome.base_config.scoring_backend == "python"
            assert outcome.variant_config.scoring_backend == "vectorized"
            assert not outcome.notes  # diagnostics (effort) matched too

    def test_backend_default_vs_protocol_serial_and_parallel(self, workload):
        """PR 7 acceptance check: the group stage routed through the
        GroupMatcherBackend protocol is byte-identical — mappings, round
        structure and scoring effort — to the frozen pre-refactor
        engine, serially and with 2 workers."""
        old, new = workload
        outcomes = backend_default_vs_protocol(old, new, workers=(1, 2))
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert outcome.ok, outcome.report()
            assert outcome.relation == IDENTICAL
            assert outcome.base_config.group_backend == "default"
            assert (
                outcome.variant_config.group_backend
                == "prerefactor-reference"
            )
            assert not outcome.notes  # diagnostics (effort) matched too

    def test_assert_equivalences_passes(self, workload):
        old, new = workload
        outcomes = assert_equivalences(old, new, workers=(2,))
        assert all(outcome.ok for outcome in outcomes)
        # one worker variant + the cache check + two filtering variants
        # + two scoring-backend variants + the indexed-vs-brute-force
        # group-pair check + two backend-protocol variants + six
        # incremental-series variants (cold/no-op/revise × workers 1, 2;
        # no append: the default 2-snapshot series has no prefix) + four
        # sharded-vs-unsharded variants (shards 1, 4 × workers 1, 2)
        # + two service-vs-inprocess variants (cache on, cache off)
        assert len(outcomes) == 21

    def test_incremental_vs_scratch_arrival_sequences(self, workload):
        """The tentpole's headline proof: incremental re-linkage over a
        3-snapshot series is decision-identical to from-scratch for the
        cold start, the no-op re-run (with zero pairs re-scored), the
        append arrival and the revised-middle-snapshot arrival — serial
        and with 2 workers."""
        from repro.datagen import GeneratorConfig, generate_series
        from repro.validation.differential import incremental_vs_scratch

        series = generate_series(
            GeneratorConfig(seed=7, num_snapshots=3, initial_households=18)
        )
        outcomes = incremental_vs_scratch(series.datasets, workers=(1, 2))
        # (cold + no-op + append + revise) × workers (1, 2)
        assert len(outcomes) == 8
        names = {outcome.name for outcome in outcomes}
        for scenario in ("cold", "no-op", "append", "revise"):
            for count in (1, 2):
                assert (
                    f"incremental-vs-scratch({scenario},n_workers={count})"
                    in names
                )
        for outcome in outcomes:
            assert outcome.ok, outcome.report()


class TestFailurePaths:
    def test_identity_violation_reported_with_diff(self, workload):
        """A knob that genuinely changes the output must fail IDENTICAL
        with a mapping diff that names the divergent pairs."""
        old, new = workload
        base = LinkageConfig()
        # Raising delta_low prunes late low-confidence rounds, so the
        # variant links strictly less — a real behavioural difference.
        variant = dataclasses.replace(base, delta_low=0.69, remaining_threshold=0.95)
        outcome = run_differential(
            old, new, base, variant, relation=IDENTICAL, name="knob-differs"
        )
        assert not outcome.ok
        report = outcome.report()
        assert "VIOLATED" in report
        assert "only in" in report

    def test_equivalence_violation_raised(self, workload):
        old, new = workload
        base = LinkageConfig()
        base_result = link_datasets(old, new, base)
        variant = dataclasses.replace(base, delta_low=0.69, remaining_threshold=0.95)
        outcome = run_differential(
            old, new, base, variant, relation=IDENTICAL,
            name="forced-failure", base_result=base_result,
        )
        with pytest.raises(EquivalenceViolation) as excinfo:
            if not outcome.ok:
                raise EquivalenceViolation([outcome])
        assert "forced-failure" in str(excinfo.value)

    def test_diagnostics_mismatch_noted(self, workload):
        old, new = workload
        config = LinkageConfig()
        base_result = link_datasets(old, new, config)
        variant = dataclasses.replace(config, delta_low=0.69)
        variant_result = link_datasets(old, new, variant)
        outcome = compare_results(
            "diag", IDENTICAL, config, variant, base_result, variant_result,
            check_diagnostics=True,
        )
        assert any("iteration count" in note or "pairs scored" in note
                   for note in outcome.notes)


class TestMappingDiff:
    def test_superset_semantics(self):
        diff = MappingDiff(
            "record link", only_in_base=[], only_in_variant=[("o1", "n1")]
        )
        assert diff.satisfies(SUPERSET)
        assert not diff.satisfies(IDENTICAL)
        assert not diff.is_identical

    def test_identical_semantics(self):
        diff = MappingDiff("record link")
        assert diff.is_identical
        assert diff.satisfies(IDENTICAL)
        assert diff.satisfies(SUPERSET)

    def test_unknown_relation_rejected(self):
        with pytest.raises(ValueError):
            MappingDiff("record link").satisfies("subset")

    def test_report_truncates(self):
        pairs = [(f"o{i}", f"n{i}") for i in range(20)]
        diff = MappingDiff("record link", only_in_base=pairs)
        lines = diff.report(limit=15)
        assert any("... 5 more" in line for line in lines)
        assert "record link only in base: o0->n0" in lines[0]
