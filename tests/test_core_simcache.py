"""SimilarityCache: pinned vs lazy storage, LRU bound, hit/miss tallies."""

import pytest

from repro.core.simcache import SimilarityCache


class TestBasics:
    def test_get_miss_then_hit(self):
        cache = SimilarityCache()
        assert cache.get(("a", "b")) is None
        cache[("a", "b")] = 0.5
        assert cache.get(("a", "b")) == 0.5
        assert cache.misses == 1
        assert cache.hits == 1

    def test_getitem_and_contains(self):
        cache = SimilarityCache()
        cache.pin(("a", "b"), 0.9)
        assert ("a", "b") in cache
        assert cache[("a", "b")] == 0.9
        with pytest.raises(KeyError):
            cache[("x", "y")]

    def test_len_and_items(self):
        cache = SimilarityCache()
        cache.pin(("a", "b"), 0.9)
        cache[("c", "d")] = 0.1
        assert len(cache) == 2
        assert dict(cache.items()) == {("a", "b"): 0.9, ("c", "d"): 0.1}
        assert cache.num_pinned == 1
        assert cache.num_lazy == 1


class TestEviction:
    def test_lazy_entries_are_capped(self):
        cache = SimilarityCache(max_lazy_entries=3)
        for index in range(5):
            cache[(f"o{index}", f"n{index}")] = float(index)
        assert cache.num_lazy == 3
        assert cache.evictions == 2
        # Oldest entries were dropped, newest survive.
        assert ("o0", "n0") not in cache
        assert ("o4", "n4") in cache

    def test_pinned_entries_never_evicted(self):
        cache = SimilarityCache(max_lazy_entries=2)
        for index in range(10):
            cache.pin((f"p{index}", f"q{index}"), float(index))
        for index in range(10):
            cache[(f"o{index}", f"n{index}")] = float(index)
        assert cache.num_pinned == 10
        assert cache.num_lazy == 2
        assert cache.get(("p0", "q0")) == 0.0

    def test_lru_refresh_on_get(self):
        cache = SimilarityCache(max_lazy_entries=2)
        cache[("a", "a")] = 0.1
        cache[("b", "b")] = 0.2
        cache.get(("a", "a"))  # refresh: a becomes most recent
        cache[("c", "c")] = 0.3  # evicts b, not a
        assert ("a", "a") in cache
        assert ("b", "b") not in cache

    def test_pin_promotes_lazy_entry(self):
        cache = SimilarityCache(max_lazy_entries=1)
        cache[("a", "a")] = 0.1
        cache.pin(("a", "a"), 0.1)
        cache[("b", "b")] = 0.2  # would evict a if it were still lazy
        assert ("a", "a") in cache
        assert cache.num_pinned == 1

    def test_setitem_does_not_shadow_pinned(self):
        cache = SimilarityCache()
        cache.pin(("a", "a"), 0.9)
        cache[("a", "a")] = 0.1  # ignored: pinned value is authoritative
        assert cache[("a", "a")] == 0.9
        assert cache.num_lazy == 0

    def test_unbounded_when_disabled(self):
        cache = SimilarityCache(max_lazy_entries=None)
        for index in range(1000):
            cache[(f"o{index}", f"n{index}")] = float(index)
        assert cache.num_lazy == 1000
        assert cache.evictions == 0

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            SimilarityCache(max_lazy_entries=-1)


class TestCounters:
    def test_counters_snapshot(self):
        cache = SimilarityCache()
        cache.get(("a", "b"))
        cache.pin(("a", "b"), 0.5)
        cache.get(("a", "b"))
        counters = cache.counters()
        assert counters["hits"] == 1
        assert counters["misses"] == 1
        assert counters["pinned"] == 1

    def test_no_double_scoring_invariant(self):
        """misses == len(cache) while evictions == 0 means every miss led
        to exactly one stored score — i.e. nothing was computed twice."""
        cache = SimilarityCache()
        for index in range(20):
            key = (f"o{index}", f"n{index}")
            if cache.get(key) is None:
                cache.pin(key, float(index))
        for index in range(20):  # all hits now
            assert cache.get((f"o{index}", f"n{index}")) is not None
        assert cache.misses == len(cache) == 20
        assert cache.evictions == 0
        assert cache.hits == 20
