"""Unit tests for group enrichment (Section 3.1)."""

import pytest

import repro.model.roles as R
from repro.core.enrichment import (
    age_difference,
    complete_groups,
    enrich_household,
    restrict_household,
)
from repro.model.records import PersonRecord


class TestAgeDifference:
    def test_absolute(self):
        old = PersonRecord("r1", "h", age=39, role=R.HEAD)
        young = PersonRecord("r2", "h", age=8, role=R.DAUGHTER)
        assert age_difference(old, young) == 31
        assert age_difference(young, old) == 31

    def test_missing_age(self):
        old = PersonRecord("r1", "h", age=None, role=R.HEAD)
        young = PersonRecord("r2", "h", age=8, role=R.DAUGHTER)
        assert age_difference(old, young) is None


class TestEnrichHousehold:
    def test_complete_graph(self, census_1871):
        enriched = enrich_household(census_1871.household("a71"))
        assert enriched.size == 5
        assert enriched.num_relationships == 10  # C(5,2)
        assert enriched.is_complete_graph()

    def test_original_untouched(self, census_1871):
        household = census_1871.household("a71")
        enrich_household(household)
        assert household.num_relationships == 0

    def test_fig2_smith_family(self, census_1871):
        """Fig. 2: the Smith household b71 gains the Elizabeth-Steve edge
        with a unified parent-child type and the age difference."""
        enriched = enrich_household(census_1871.household("b71"))
        rel = enriched.get_relationship("1871_7", "1871_8")
        assert rel is not None
        assert rel.rel_type == R.PARENT_CHILD
        assert rel.age_diff == 29  # 41 - 12
        assert rel.derived  # neither endpoint is the head

    def test_head_edges_not_marked_derived(self, census_1871):
        enriched = enrich_household(census_1871.household("b71"))
        rel = enriched.get_relationship("1871_6", "1871_7")
        assert rel is not None
        assert rel.rel_type == R.SPOUSE
        assert not rel.derived

    def test_age_diff_example_from_paper(self, census_1871):
        """§2: John (39) and his daughter Alice (8) differ by 31 years."""
        enriched = enrich_household(census_1871.household("a71"))
        rel = enriched.get_relationship("1871_1", "1871_3")
        assert rel.age_diff == 31
        assert rel.rel_type == R.PARENT_CHILD

    def test_sibling_derivation(self, census_1871):
        """§2: Alice and William are siblings with age difference 6."""
        enriched = enrich_household(census_1871.household("a71"))
        rel = enriched.get_relationship("1871_3", "1871_4")
        assert rel.rel_type == R.SIBLING
        assert rel.age_diff == 6

    def test_singleton_household(self):
        record = PersonRecord("r1", "h1", "john", "smith", "m", 40, role=R.HEAD)
        from repro.model.households import Household

        enriched = enrich_household(Household.from_members("h1", [record]))
        assert enriched.num_relationships == 0


class TestCompleteGroups:
    def test_enriches_every_household(self, census_1881):
        enriched = complete_groups(census_1881)
        assert set(enriched) == {"a81", "b81", "c81", "d81"}
        for household in enriched.values():
            assert household.is_complete_graph()


class TestRestrictHousehold:
    def test_induced_subgraph(self, census_1871):
        enriched = enrich_household(census_1871.household("a71"))
        restricted = restrict_household(enriched, {"1871_1", "1871_2", "1871_3"})
        assert restricted.size == 3
        assert restricted.num_relationships == 3

    def test_empty_restriction(self, census_1871):
        enriched = enrich_household(census_1871.household("a71"))
        assert restrict_household(enriched, set()).size == 0
