"""Failure-injection tests: the pipeline under degraded data.

Each test damages the input data in a specific way and checks that the
pipeline degrades gracefully (no crash, sane mappings) — the conditions
real census extracts produce routinely.
"""

import dataclasses

import pytest

import repro.model.roles as R
from repro.core.config import LinkageConfig
from repro.core.pipeline import link_datasets
from repro.datagen import CorruptionParams, GeneratorConfig, generate_series
from repro.evaluation.metrics import evaluate_mapping
from repro.model.dataset import CensusDataset
from repro.model.records import PersonRecord


def strip_attribute(dataset: CensusDataset, attribute: str) -> CensusDataset:
    records = [
        record.replace(**{attribute: None}) for record in dataset.iter_records()
    ]
    return CensusDataset.from_records(dataset.year, records)


class TestMissingAttributes:
    def test_all_ages_missing(self, small_pair):
        """Without ages the temporal filters disarm but linkage still
        works on names (at lower precision)."""
        old, new = small_pair.datasets
        result = link_datasets(
            strip_attribute(old, "age"), strip_attribute(new, "age"),
            LinkageConfig(),
        )
        assert len(result.record_mapping) > 0
        truth = small_pair.ground_truth.record_mapping(old.year, new.year)
        quality = evaluate_mapping(result.record_mapping, truth)
        assert quality.recall > 0.3

    def test_all_occupations_missing(self, small_pair):
        old, new = small_pair.datasets
        result = link_datasets(
            strip_attribute(old, "occupation"),
            strip_attribute(new, "occupation"),
            LinkageConfig(),
        )
        truth = small_pair.ground_truth.record_mapping(old.year, new.year)
        quality = evaluate_mapping(result.record_mapping, truth)
        assert quality.f_measure > 0.6

    def test_all_sexes_missing(self, small_pair):
        old, new = small_pair.datasets
        result = link_datasets(
            strip_attribute(old, "sex"), strip_attribute(new, "sex"),
            LinkageConfig(),
        )
        assert len(result.record_mapping) > 0

    def test_missing_surnames_fall_back_to_first_name_pass(self, small_pair):
        old, new = small_pair.datasets
        result = link_datasets(
            strip_attribute(old, "surname"), strip_attribute(new, "surname"),
            LinkageConfig(),
        )
        # Blocking's first-name pass keeps candidates alive.
        assert len(result.record_mapping) >= 0  # must simply not crash


class TestExtremeNoise:
    def test_heavy_corruption_degrades_gracefully(self):
        noisy = GeneratorConfig(
            seed=3,
            start_year=1871,
            num_snapshots=2,
            initial_households=60,
            corruption=CorruptionParams().scaled(4.0),
        )
        series = generate_series(noisy)
        old, new = series.datasets
        result = link_datasets(old, new, LinkageConfig())
        truth = series.ground_truth.record_mapping(1871, 1881)
        quality = evaluate_mapping(result.record_mapping, truth)
        clean = generate_series(dataclasses.replace(
            noisy, corruption=CorruptionParams().scaled(0.0)
        ))
        clean_result = link_datasets(*clean.datasets, LinkageConfig())
        clean_quality = evaluate_mapping(
            clean_result.record_mapping,
            clean.ground_truth.record_mapping(1871, 1881),
        )
        assert clean_quality.f_measure > quality.f_measure
        assert quality.f_measure > 0.4  # degraded, not destroyed

    def test_zero_noise_near_perfect(self):
        series = generate_series(GeneratorConfig(
            seed=3, start_year=1871, num_snapshots=2, initial_households=60,
            corruption=CorruptionParams().scaled(0.0),
        ))
        old, new = series.datasets
        result = link_datasets(old, new, LinkageConfig())
        truth = series.ground_truth.record_mapping(1871, 1881)
        quality = evaluate_mapping(result.record_mapping, truth)
        assert quality.precision > 0.97


class TestPathologicalShapes:
    def test_one_side_empty(self, small_pair):
        old, _ = small_pair.datasets
        result = link_datasets(old, CensusDataset(1881), LinkageConfig())
        assert len(result.record_mapping) == 0
        assert len(result.group_mapping) == 0

    def test_identical_snapshots(self, small_pair):
        """Linking a census against a same-year copy of itself: with the
        age gap still assumed, the temporal age normalisation penalises
        every pair by the gap — the pipeline must survive it."""
        old, _ = small_pair.datasets
        copy = CensusDataset.from_records(
            1881,
            [
                record.replace(record_id=f"c_{record.record_id}")
                for record in old.iter_records()
            ],
        )
        result = link_datasets(old, copy, LinkageConfig())
        assert len(result.record_mapping) >= 0  # no crash, 1:1 holds

    def test_all_singleton_households(self):
        old = CensusDataset.from_records(
            1871,
            [
                PersonRecord(f"o{i}", f"g{i}", "john", f"sur{i}", "m", 30 + i,
                             role=R.HEAD)
                for i in range(8)
            ],
        )
        new = CensusDataset.from_records(
            1881,
            [
                PersonRecord(f"n{i}", f"h{i}", "john", f"sur{i}", "m", 40 + i,
                             role=R.HEAD)
                for i in range(8)
            ],
        )
        result = link_datasets(old, new, LinkageConfig(blocking="cross"))
        # No relationships exist, so everything rides on the remaining
        # pass; the distinct surnames make the links unambiguous.
        assert len(result.record_mapping) == 8

    def test_duplicate_families(self):
        """Two byte-identical families in both censuses: the pipeline
        may pick either pairing but must stay 1:1 and must not crash."""
        def family(prefix, household):
            return [
                PersonRecord(f"{prefix}1", household, "john", "kay", "m", 30,
                             "weaver", "bank st", R.HEAD),
                PersonRecord(f"{prefix}2", household, "mary", "kay", "f", 28,
                             None, "bank st", R.WIFE),
            ]

        old = CensusDataset.from_records(
            1871, family("a", "g1") + family("b", "g2")
        )
        new_records = []
        for prefix, household in (("c", "h1"), ("d", "h2")):
            for record in family(prefix, household):
                new_records.append(record.replace(age=record.age + 10))
        new = CensusDataset.from_records(1881, new_records)
        result = link_datasets(old, new, LinkageConfig(blocking="cross"))
        pairs = result.record_mapping.pairs()
        assert len({o for o, _ in pairs}) == len(pairs)
        assert len({n for _, n in pairs}) == len(pairs)
