"""Tests for the multi-region country-scale generator
(:mod:`repro.datagen.country`).

The load-bearing property is **per-region RNG independence**: a region's
records depend only on the country seed and the region's *name*, never
on which other regions exist.  That is what lets country-scale fixtures
grow region by region without invalidating previously generated data,
and what the hypothesis battery pins below.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datagen import generate_series
from repro.datagen.country import (
    REGION_SEP,
    CountryConfig,
    default_region_names,
    generate_country,
    generate_region_series,
    namespace_record,
    region_of,
    region_of_record,
    region_seed,
)


def record_rows(dataset):
    """Canonical content rows for byte-level comparisons."""
    return [
        (r.record_id, r.household_id, r.first_name, r.surname, r.sex,
         r.age, r.occupation, r.address, r.role, r.entity_id)
        for r in dataset.iter_records()
    ]


class TestCountryConfig:
    def test_defaults(self):
        config = CountryConfig()
        assert config.region_names == ("r00", "r01", "r02", "r03")
        assert config.region_sizes == (300, 300, 300, 300)
        assert config.years == [1871, 1881]

    def test_named_regions_and_sizes(self):
        config = CountryConfig(
            regions=("east", "west"), households_per_region=(10, 20)
        )
        assert config.region_names == ("east", "west")
        assert config.region_sizes == (10, 20)

    def test_rejects_separator_in_name(self):
        with pytest.raises(ValueError):
            CountryConfig(regions=("a::b",))

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            CountryConfig(regions=("east", "east"))

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            CountryConfig(regions=("east", ""))

    def test_rejects_misaligned_sizes(self):
        with pytest.raises(ValueError):
            CountryConfig(regions=3, households_per_region=(10, 20))

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            CountryConfig(regions=1, households_per_region=0)

    def test_default_region_names_zero_padded(self):
        assert default_region_names(3) == ("r00", "r01", "r02")
        names = default_region_names(120)
        assert names[0] == "r000" and names[-1] == "r119"


class TestNamespacing:
    def test_region_of_roundtrip(self):
        assert region_of("east::h12") == "east"
        assert region_of("h12") == ""  # not namespaced

    def test_namespace_record_prefixes_all_ids(self):
        series = generate_series()
        record = next(iter(series.datasets[0].iter_records()))
        spaced = namespace_record("east", record)
        assert spaced.record_id == f"east{REGION_SEP}{record.record_id}"
        assert spaced.household_id == f"east{REGION_SEP}{record.household_id}"
        assert spaced.entity_id == f"east{REGION_SEP}{record.entity_id}"
        assert region_of_record(spaced) == "east"

    def test_region_seed_depends_on_name_only(self):
        assert region_seed(42, "east") == region_seed(42, "east")
        assert region_seed(42, "east") != region_seed(42, "west")
        assert region_seed(42, "east") != region_seed(43, "east")


class TestGenerateCountry:
    @pytest.fixture(scope="class")
    def country(self):
        return generate_country(
            CountryConfig(seed=9, regions=3, households_per_region=25)
        )

    def test_every_id_namespaced(self, country):
        for dataset in country.datasets:
            for record in dataset.iter_records():
                assert region_of_record(record) in country.regions
                assert region_of(record.household_id) == region_of_record(
                    record
                )

    def test_all_regions_populated(self, country):
        for dataset in country.datasets:
            regions = {
                region_of_record(r) for r in dataset.iter_records()
            }
            assert regions == set(country.regions)

    def test_deterministic(self, country):
        again = generate_country(
            CountryConfig(seed=9, regions=3, households_per_region=25)
        )
        for a, b in zip(country.datasets, again.datasets):
            assert record_rows(a) == record_rows(b)

    def test_ground_truth_namespaced_and_merged(self, country):
        old, new = country.successive_pairs()[0]
        truth = country.ground_truth.record_mapping(old.year, new.year)
        assert len(truth) > 0
        old_ids = set(old.record_ids)
        new_ids = set(new.record_ids)
        for old_id, new_id in truth:
            assert old_id in old_ids and new_id in new_ids
            # Truth links never cross regions: entities live in one region.
            assert region_of(old_id) == region_of(new_id)

    def test_matches_region_series(self, country):
        """The country is the namespaced union of its region series."""
        reference = generate_region_series(
            CountryConfig(seed=9, regions=3, households_per_region=25),
            country.regions[1],
        )
        region = country.regions[1]
        for country_ds, region_ds in zip(
            country.datasets, reference.datasets
        ):
            mine = [
                row for row in record_rows(country_ds)
                if row[0].startswith(region + REGION_SEP)
            ]
            spaced = [
                (f"{region}{REGION_SEP}{r[0]}",
                 f"{region}{REGION_SEP}{r[1]}",
                 *r[2:9],
                 f"{region}{REGION_SEP}{r[9]}")
                for r in record_rows(region_ds)
            ]
            assert mine == spaced


class TestRegionIndependence:
    """Adding or removing regions never perturbs another region's data."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        keep=st.sampled_from(("alpha", "beta", "gamma")),
        others=st.lists(
            st.sampled_from(("alpha", "beta", "gamma", "delta")),
            unique=True, max_size=3,
        ),
    )
    def test_region_records_independent_of_region_list(
        self, seed, keep, others
    ):
        names = [keep] + [name for name in others if name != keep]
        small = CountryConfig(
            seed=seed, regions=(keep,), households_per_region=6
        )
        big = CountryConfig(
            seed=seed,
            regions=tuple(names),
            households_per_region=tuple([6] * len(names)),
        )
        alone = generate_country(small)
        crowd = generate_country(big)
        for a, b in zip(alone.datasets, crowd.datasets):
            mine = [
                row for row in record_rows(b)
                if row[0].startswith(keep + REGION_SEP)
            ]
            assert record_rows(a) == mine
