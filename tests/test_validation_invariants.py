"""Invariant registry: clean runs validate, corrupted results raise."""

import pytest

from repro.core.config import LinkageConfig
from repro.core.pipeline import LinkOrigin, link_datasets
from repro.core.selection import SelectionResult, select_group_matches
from repro.core.subgraph import SubgraphMatch
from repro.datagen import generate_pair
from repro.validation.invariants import (
    REGISTRY,
    InvariantViolation,
    ValidationReport,
    Violation,
    invariant,
    validate_result,
    validate_selection,
)


@pytest.fixture(scope="module")
def workload():
    series = generate_pair(seed=7, initial_households=25)
    return series.datasets


@pytest.fixture(scope="module")
def validated(workload):
    old, new = workload
    config = LinkageConfig(validate=True)
    return link_datasets(old, new, config), config


class TestRegistry:
    def test_expected_invariants_registered(self):
        assert {
            "record-mapping-one-to-one",
            "record-links-within-datasets",
            "group-links-witnessed",
            "delta-schedule-strictly-decreasing",
            "iteration-accounting",
            "link-scores-reach-threshold",
        } <= set(REGISTRY)

    def test_descriptions_present(self):
        for entry in REGISTRY.values():
            assert entry.description

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            invariant("record-mapping-one-to-one", "dup")(lambda ctx: [])


class TestCleanRun:
    def test_validated_run_passes_standalone(self, workload, validated):
        old, new = workload
        result, config = validated
        report = validate_result(result, old, new, config)
        assert report.ok
        assert report.violated_invariants() == []
        assert "all invariants hold" in report.summary()
        report.raise_if_failed()  # must not raise

    def test_provenance_recorded_for_every_link(self, validated):
        result, _ = validated
        assert result.provenance is not None
        assert set(result.provenance) == set(result.record_mapping.pairs())
        sources = {origin.source for origin in result.provenance.values()}
        assert sources <= {"subgraph", "remaining"}

    def test_unvalidated_run_skips_score_check(self, workload):
        old, new = workload
        config = LinkageConfig()
        result = link_datasets(old, new, config)
        assert result.provenance is None
        report = validate_result(result, old, new, config)
        assert report.ok
        assert "link-scores-reach-threshold" in report.skipped

    def test_invariant_checks_counted(self, validated):
        result, _ = validated
        assert result.profile.value("invariant_checks") > 0
        assert result.profile.seconds("validation") >= 0.0


class TestCorruptedResults:
    """Deliberate corruption raises InvariantViolation naming the invariant."""

    def _fresh(self, workload):
        old, new = workload
        config = LinkageConfig(validate=True)
        return link_datasets(old, new, config), old, new, config

    def test_corrupt_record_mapping_one_to_one(self, workload):
        result, old, new, config = self._fresh(workload)
        # Bypass RecordMapping.add: point one old record at another's
        # partner, desynchronising the forward and backward indexes.
        old_id, new_id = result.record_mapping.pairs()[0]
        _, other_new = result.record_mapping.pairs()[1]
        result.record_mapping._old_to_new[old_id] = other_new
        with pytest.raises(InvariantViolation) as excinfo:
            validate_result(result, old, new, config).raise_if_failed()
        assert "record-mapping-one-to-one" in str(excinfo.value)
        assert (
            "record-mapping-one-to-one"
            in excinfo.value.report.violated_invariants()
        )

    def test_unwitnessed_group_link(self, workload):
        result, old, new, config = self._fresh(workload)
        old_group = sorted(old.households)[0]
        new_group = sorted(new.households)[-1]
        linked = {
            (origin, target) for origin, target in result.group_mapping
        }
        assert (old_group, new_group) not in linked
        result.group_mapping.add(old_group, new_group)
        with pytest.raises(InvariantViolation, match="group-links-witnessed"):
            validate_result(result, old, new, config).raise_if_failed()

    def test_unknown_record_endpoint(self, workload):
        result, old, new, config = self._fresh(workload)
        result.record_mapping.add("ghost_old", "ghost_new")
        with pytest.raises(
            InvariantViolation, match="record-links-within-datasets"
        ):
            validate_result(result, old, new, config).raise_if_failed()

    def test_non_decreasing_delta_schedule(self, workload):
        result, old, new, config = self._fresh(workload)
        if len(result.iterations) < 2:
            pytest.skip("run converged in one round")
        result.iterations[-1].delta = result.iterations[0].delta + 0.1
        with pytest.raises(
            InvariantViolation, match="delta-schedule-strictly-decreasing"
        ):
            validate_result(result, old, new, config).raise_if_failed()

    def test_iteration_accounting_drift(self, workload):
        result, old, new, config = self._fresh(workload)
        result.subgraph_record_links += 1
        with pytest.raises(InvariantViolation, match="iteration-accounting"):
            validate_result(result, old, new, config).raise_if_failed()

    def test_link_score_below_threshold(self, workload):
        result, old, new, config = self._fresh(workload)
        pair = next(iter(sorted(result.provenance)))
        # Claim the pair was accepted at an impossible threshold.
        result.provenance[pair] = LinkOrigin("subgraph", 1, 1.5)
        with pytest.raises(
            InvariantViolation, match="link-scores-reach-threshold"
        ):
            validate_result(result, old, new, config).raise_if_failed()


def _subgraph(old_group, new_group, vertices):
    return SubgraphMatch(
        old_group_id=old_group,
        new_group_id=new_group,
        vertices=list(vertices),
        edges=[(0, 1, 1.0)] if len(vertices) > 1 else [],
        old_edge_total=1,
        new_edge_total=1,
        g_sim=0.9,
    )


class _StubPrematch:
    """Minimal PreMatchResult stand-in: fixed scores, peek-free store."""

    def __init__(self, scores):
        self.scores = scores
        self.sim_func = None
        self.old_index = {}
        self.new_index = {}


class TestValidateSelection:
    def test_disjoint_selection_passes(self):
        selection = SelectionResult()
        selection.accepted.append(_subgraph("a", "b", [("o1", "n1"), ("o2", "n2")]))
        selection.group_mapping.add("a", "b")
        from repro.model.mappings import RecordMapping

        scores = {("o1", "n1"): 0.9, ("o2", "n2"): 0.8}
        report = validate_selection(
            selection, RecordMapping(), _StubPrematch(scores), 0.7,
            LinkageConfig(),
        )
        assert report.ok

    def test_overlapping_subgraphs_flagged(self):
        selection = SelectionResult()
        selection.accepted.append(_subgraph("a", "b", [("o1", "n1")]))
        selection.accepted.append(_subgraph("a", "c", [("o1", "n2")]))
        selection.group_mapping.add("a", "b")
        selection.group_mapping.add("a", "c")
        from repro.model.mappings import RecordMapping

        scores = {("o1", "n1"): 0.9, ("o1", "n2"): 0.9}
        report = validate_selection(
            selection, RecordMapping(), _StubPrematch(scores), 0.7,
            LinkageConfig(),
        )
        assert not report.ok
        assert "selection-record-disjoint" in report.violated_invariants()

    def test_group_mapping_drift_flagged(self):
        selection = SelectionResult()
        selection.accepted.append(_subgraph("a", "b", [("o1", "n1")]))
        selection.group_mapping.add("a", "zzz")  # not justified by a subgraph
        from repro.model.mappings import RecordMapping

        report = validate_selection(
            selection, RecordMapping(), _StubPrematch({("o1", "n1"): 0.9}),
            0.7, LinkageConfig(),
        )
        assert "selection-group-links-consistent" in report.violated_invariants()

    def test_below_delta_link_flagged(self):
        selection = SelectionResult()
        selection.accepted.append(_subgraph("a", "b", [("o1", "n1")]))
        selection.group_mapping.add("a", "b")
        from repro.model.mappings import RecordMapping

        report = validate_selection(
            selection, RecordMapping(), _StubPrematch({("o1", "n1"): 0.5}),
            0.7, LinkageConfig(),
        )
        assert "selection-links-reach-delta" in report.violated_invariants()

    def test_threshold_check_skipped_without_guard(self):
        selection = SelectionResult()
        selection.accepted.append(_subgraph("a", "b", [("o1", "n1")]))
        selection.group_mapping.add("a", "b")
        from repro.model.mappings import RecordMapping

        report = validate_selection(
            selection, RecordMapping(), _StubPrematch({("o1", "n1"): 0.1}),
            0.7, LinkageConfig(require_direct_pair_threshold=False),
        )
        assert report.ok
        assert "selection-links-reach-delta" in report.skipped


class TestSelectionDisjointnessHelper:
    def test_select_group_matches_is_disjoint(self):
        subgraphs = [
            _subgraph("a", "b", [("o1", "n1"), ("o2", "n2")]),
            _subgraph("a", "c", [("o2", "n3")]),  # conflicts on o2
        ]
        selection = select_group_matches(subgraphs)
        assert selection.disjointness_violations() == []
        assert len(selection.accepted) == 1

    def test_helper_reports_duplicates(self):
        selection = SelectionResult()
        selection.accepted.append(_subgraph("a", "b", [("o1", "n1")]))
        selection.accepted.append(_subgraph("c", "d", [("o1", "n9")]))
        assert "o1" in selection.disjointness_violations()


class TestReportShape:
    def test_summary_lists_examples(self):
        report = ValidationReport(
            violations=[
                Violation("some-invariant", "broke", ("x->y", "p->q"))
            ],
            checked=["some-invariant"],
        )
        text = report.summary()
        assert "some-invariant" in text
        assert "x->y" in text
        with pytest.raises(InvariantViolation):
            report.raise_if_failed()
