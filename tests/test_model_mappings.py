"""Unit tests for record (1:1) and group (N:M) mappings."""

import pytest

from repro.model.mappings import (
    GroupMapping,
    MappingConflictError,
    RecordMapping,
    induced_group_mapping,
)


class TestRecordMapping:
    def test_add_and_query(self):
        mapping = RecordMapping()
        mapping.add("o1", "n1")
        assert mapping.get_new("o1") == "n1"
        assert mapping.get_old("n1") == "o1"
        assert ("o1", "n1") in mapping
        assert mapping.contains_old("o1")
        assert mapping.contains_new("n1")
        assert len(mapping) == 1

    def test_idempotent_re_add(self):
        mapping = RecordMapping([("o1", "n1")])
        mapping.add("o1", "n1")
        assert len(mapping) == 1

    def test_conflicting_old_rejected(self):
        mapping = RecordMapping([("o1", "n1")])
        with pytest.raises(MappingConflictError):
            mapping.add("o1", "n2")

    def test_conflicting_new_rejected(self):
        mapping = RecordMapping([("o1", "n1")])
        with pytest.raises(MappingConflictError):
            mapping.add("o2", "n1")

    def test_try_add(self):
        mapping = RecordMapping([("o1", "n1")])
        assert not mapping.try_add("o1", "n2")
        assert mapping.try_add("o2", "n2")
        assert len(mapping) == 2

    def test_update_merges(self):
        mapping = RecordMapping([("o1", "n1")])
        mapping.update(RecordMapping([("o2", "n2")]))
        assert len(mapping) == 2

    def test_update_conflict_raises(self):
        mapping = RecordMapping([("o1", "n1")])
        with pytest.raises(MappingConflictError):
            mapping.update(RecordMapping([("o1", "n9")]))

    def test_pairs_sorted(self):
        mapping = RecordMapping([("o2", "n2"), ("o1", "n1")])
        assert mapping.pairs() == [("o1", "n1"), ("o2", "n2")]

    def test_equality_and_copy(self):
        mapping = RecordMapping([("o1", "n1")])
        copy = mapping.copy()
        assert copy == mapping
        copy.add("o2", "n2")
        assert copy != mapping

    def test_restricted_to(self):
        mapping = RecordMapping([("o1", "n1"), ("o2", "n2")])
        assert mapping.restricted_to(old_ids={"o1"}).pairs() == [("o1", "n1")]
        assert mapping.restricted_to(new_ids={"n2"}).pairs() == [("o2", "n2")]
        assert len(mapping.restricted_to(old_ids=set())) == 0

    def test_id_sets(self):
        mapping = RecordMapping([("o1", "n1"), ("o2", "n2")])
        assert mapping.old_ids == {"o1", "o2"}
        assert mapping.new_ids == {"n1", "n2"}


class TestGroupMapping:
    def test_many_to_many(self):
        mapping = GroupMapping()
        mapping.add("g1", "h1")
        mapping.add("g1", "h2")
        mapping.add("g2", "h1")
        assert mapping.partners_of_old("g1") == {"h1", "h2"}
        assert mapping.partners_of_new("h1") == {"g1", "g2"}
        assert len(mapping) == 3

    def test_duplicate_pairs_collapse(self):
        mapping = GroupMapping([("g1", "h1"), ("g1", "h1")])
        assert len(mapping) == 1

    def test_contains(self):
        mapping = GroupMapping([("g1", "h1")])
        assert ("g1", "h1") in mapping
        assert ("g1", "h2") not in mapping
        assert mapping.contains_old("g1")
        assert not mapping.contains_new("h2")

    def test_is_one_to_one_pair(self):
        mapping = GroupMapping([("g1", "h1"), ("g2", "h2"), ("g2", "h3")])
        assert mapping.is_one_to_one_pair("g1", "h1")
        assert not mapping.is_one_to_one_pair("g2", "h2")

    def test_update_and_copy(self):
        mapping = GroupMapping([("g1", "h1")])
        other = GroupMapping([("g2", "h2")])
        mapping.update(other)
        assert len(mapping) == 2
        copy = mapping.copy()
        copy.add("g3", "h3")
        assert len(mapping) == 2

    def test_partners_of_missing_group(self):
        assert GroupMapping().partners_of_old("nope") == set()


class TestInducedGroupMapping:
    def test_induces_links_from_records(self):
        record_mapping = RecordMapping([("o1", "n1"), ("o2", "n2")])
        old_household = {"o1": "g1", "o2": "g1"}
        new_household = {"n1": "h1", "n2": "h2"}
        induced = induced_group_mapping(
            record_mapping, old_household, new_household
        )
        assert set(induced.pairs()) == {("g1", "h1"), ("g1", "h2")}

    def test_empty_record_mapping(self):
        assert len(induced_group_mapping(RecordMapping(), {}, {})) == 0
