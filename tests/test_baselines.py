"""Tests for the baseline matchers (CL, GraphSim, attribute-only)."""

import pytest

from repro.baselines.attribute_only import AttributeOnlyLinkage
from repro.baselines.collective import CollectiveLinkage
from repro.baselines.graphsim import GraphSimLinkage
from repro.blocking.standard import CrossProductBlocker
from repro.core.config import OMEGA2, LinkageConfig
from repro.core.pipeline import link_datasets
from repro.evaluation.metrics import evaluate_mapping
from repro.similarity.vector import build_similarity_function

SIM = build_similarity_function(list(OMEGA2), 0.5)


class TestAttributeOnly:
    def test_links_running_example(self, census_1871, census_1881):
        baseline = AttributeOnlyLinkage(
            SIM.with_threshold(0.75), blocker=CrossProductBlocker()
        )
        result = baseline.link(census_1871, census_1881)
        assert ("1871_6", "1881_4") in result.record_mapping
        assert result.group_mapping.contains_old("b71")

    def test_record_mapping_one_to_one(self, small_pair):
        old, new = small_pair.datasets
        result = AttributeOnlyLinkage(SIM.with_threshold(0.75)).link(old, new)
        pairs = result.record_mapping.pairs()
        assert len({o for o, _ in pairs}) == len(pairs)

    def test_group_mapping_induced(self, census_1871, census_1881):
        baseline = AttributeOnlyLinkage(
            SIM.with_threshold(0.75), blocker=CrossProductBlocker()
        )
        result = baseline.link(census_1871, census_1881)
        for old_id, new_id in result.record_mapping:
            pair = (
                census_1871.record(old_id).household_id,
                census_1881.record(new_id).household_id,
            )
            assert pair in result.group_mapping


class TestCollective:
    def test_seed_links_found(self, census_1871, census_1881):
        baseline = CollectiveLinkage(SIM, blocker=CrossProductBlocker())
        result = baseline.link(census_1871, census_1881)
        assert ("1871_1", "1881_1") in result.record_mapping

    def test_relational_propagation_links_neighbours(
        self, census_1871, census_1881
    ):
        """William (a71) has weaker attribute evidence than the decoy in
        d81, but his matched parents raise the relational score."""
        baseline = CollectiveLinkage(SIM, blocker=CrossProductBlocker())
        result = baseline.link(census_1871, census_1881)
        assert result.record_mapping.get_new("1871_4") in ("1881_3", "1881_11")

    def test_age_filter_respected(self, census_1871, census_1881):
        baseline = CollectiveLinkage(SIM, blocker=CrossProductBlocker())
        result = baseline.link(census_1871, census_1881)
        # Mary (born 1880) cannot match anyone from 1871.
        assert not result.record_mapping.contains_new("1881_8")

    def test_one_to_one(self, small_pair):
        old, new = small_pair.datasets
        result = CollectiveLinkage(SIM).link(old, new)
        pairs = result.record_mapping.pairs()
        assert len({n for _, n in pairs}) == len(pairs)

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            CollectiveLinkage(SIM, relational_weight=1.5)

    def test_deterministic(self, small_pair):
        old, new = small_pair.datasets
        first = CollectiveLinkage(SIM).link(old, new)
        second = CollectiveLinkage(SIM).link(old, new)
        assert first.record_mapping == second.record_mapping


class TestGraphSim:
    def test_initial_mapping_strictly_one_to_one(self, census_1871, census_1881):
        baseline = GraphSimLinkage(SIM, blocker=CrossProductBlocker())
        mapping, _ = baseline.initial_record_mapping(census_1871, census_1881)
        pairs = mapping.pairs()
        assert len({o for o, _ in pairs}) == len(pairs)
        assert len({n for _, n in pairs}) == len(pairs)

    def test_ambiguous_records_dropped(self):
        """A record with two equally scoring candidates is dropped by the
        strict 1:1 initial filter."""
        import repro.model.roles as R
        from repro.model.dataset import CensusDataset
        from repro.model.records import PersonRecord

        old = CensusDataset.from_records(
            1871,
            [PersonRecord("o1", "g1", "john", "kay", "m", 30, role=R.HEAD)],
        )
        new = CensusDataset.from_records(
            1881,
            [
                PersonRecord("n1", "h1", "john", "kay", "m", 40, role=R.HEAD),
                PersonRecord("n2", "h2", "john", "kay", "m", 40, role=R.HEAD),
            ],
        )
        exact_names = build_similarity_function(
            [("first_name", "exact", 0.5), ("surname", "exact", 0.5)], 0.5
        )
        baseline = GraphSimLinkage(exact_names, blocker=CrossProductBlocker())
        mapping, _ = baseline.initial_record_mapping(old, new)
        assert not mapping.contains_old("o1")

    def test_group_linkage_runs(self, census_1871, census_1881):
        baseline = GraphSimLinkage(SIM, blocker=CrossProductBlocker())
        result = baseline.link(census_1871, census_1881)
        assert ("b71", "b81") in result.group_mapping

    def test_non_iterative_recall_below_ours(self, small_pair):
        old, new = small_pair.datasets
        truth = small_pair.ground_truth.record_mapping(old.year, new.year)
        graphsim = GraphSimLinkage(SIM).link(old, new)
        ours = link_datasets(old, new, LinkageConfig())
        gs_quality = evaluate_mapping(graphsim.record_mapping, truth)
        our_quality = evaluate_mapping(ours.record_mapping, truth)
        assert our_quality.recall >= gs_quality.recall

    def test_deterministic(self, small_pair):
        old, new = small_pair.datasets
        first = GraphSimLinkage(SIM).link(old, new)
        second = GraphSimLinkage(SIM).link(old, new)
        assert first.group_mapping == second.group_mapping
