"""Unit tests for union-find and connected components."""

from repro.graphutil.components import connected_components, largest_component
from repro.graphutil.union_find import UnionFind


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(["a", "b"])
        assert not uf.connected("a", "b")
        assert uf.groups() == [["a"], ["b"]]

    def test_union_connects(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.connected("a", "b")

    def test_transitivity(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")

    def test_find_auto_adds(self):
        uf = UnionFind()
        assert uf.find("new") == "new"
        assert "new" in uf

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        root = uf.union("a", "b")
        assert root == uf.find("a")

    def test_groups_sorted_and_complete(self):
        uf = UnionFind(["d"])
        uf.union("c", "a")
        uf.union("b", "e")
        groups = uf.groups()
        assert groups == [["a", "c"], ["b", "e"], ["d"]]

    def test_len(self):
        uf = UnionFind(["a", "b"])
        uf.union("a", "c")
        assert len(uf) == 3

    def test_large_chain(self):
        uf = UnionFind()
        for index in range(999):
            uf.union(index, index + 1)
        assert uf.connected(0, 999)
        assert len(uf.groups()) == 1


class TestConnectedComponents:
    def test_isolated_nodes(self):
        components = connected_components(["a", "b"], [])
        assert components == [["a"], ["b"]]

    def test_edges_merge(self):
        components = connected_components(
            ["a", "b", "c", "d"], [("a", "b"), ("c", "d")]
        )
        assert components == [["a", "b"], ["c", "d"]]

    def test_edge_endpoints_added_implicitly(self):
        components = connected_components([], [("x", "y")])
        assert components == [["x", "y"]]

    def test_largest_component(self):
        component = largest_component(
            ["a", "b", "c", "d", "e"], [("a", "b"), ("b", "c")]
        )
        assert component == ["a", "b", "c"]

    def test_largest_of_empty(self):
        assert largest_component([], []) == []

    def test_largest_tie_is_deterministic(self):
        first = largest_component(["a", "b", "c", "d"], [("a", "b"), ("c", "d")])
        second = largest_component(["a", "b", "c", "d"], [("a", "b"), ("c", "d")])
        assert first == second == ["a", "b"]
