"""Shared fixtures: the paper's running example and small generated data."""

import pytest

import repro.model.roles as R
from repro.core.config import LinkageConfig
from repro.datagen import GeneratorConfig, generate_series
from repro.model import CensusDataset, PersonRecord


def build_1871_dataset() -> CensusDataset:
    """The 1871 snapshot of the paper's running example (Fig. 1).

    Household a: John Ashworth's family plus his father-in-law John Riley.
    Household b: John Smith's family.
    """
    records = [
        PersonRecord("1871_1", "a71", "john", "ashworth", "m", 39, "weaver",
                     "bacup rd", R.HEAD),
        PersonRecord("1871_2", "a71", "elizabeth", "ashworth", "f", 37, None,
                     "bacup rd", R.WIFE),
        PersonRecord("1871_3", "a71", "alice", "ashworth", "f", 8, None,
                     "bacup rd", R.DAUGHTER),
        PersonRecord("1871_4", "a71", "william", "ashworth", "m", 2, None,
                     "bacup rd", R.SON),
        PersonRecord("1871_5", "a71", "john", "riley", "m", 65, None,
                     "bacup rd", R.FATHER_IN_LAW),
        PersonRecord("1871_6", "b71", "john", "smith", "m", 44, "miner",
                     "york st", R.HEAD),
        PersonRecord("1871_7", "b71", "elizabeth", "smith", "f", 41, None,
                     "york st", R.WIFE),
        PersonRecord("1871_8", "b71", "steve", "smith", "m", 12, None,
                     "york st", R.SON),
    ]
    return CensusDataset.from_records(1871, records)


def build_1881_dataset() -> CensusDataset:
    """The 1881 snapshot: John Riley died, Alice married Steve (household
    c), Mary was born, and a look-alike Ashworth family (household d)
    moved into the district."""
    records = [
        PersonRecord("1881_1", "a81", "john", "ashworth", "m", 49, "weaver",
                     "bacup rd", R.HEAD),
        PersonRecord("1881_2", "a81", "elizabeth", "ashworth", "f", 47, None,
                     "bacup rd", R.WIFE),
        PersonRecord("1881_3", "a81", "william", "ashworth", "m", 12, None,
                     "bacup rd", R.SON),
        PersonRecord("1881_4", "b81", "john", "smith", "m", 54, "miner",
                     "york st", R.HEAD),
        PersonRecord("1881_5", "b81", "elizabeth", "smith", "f", 51, None,
                     "york st", R.WIFE),
        PersonRecord("1881_6", "c81", "steve", "smith", "m", 22, "weaver",
                     "mill ln", R.HEAD),
        PersonRecord("1881_7", "c81", "alice", "smith", "f", 18, None,
                     "mill ln", R.WIFE),
        PersonRecord("1881_8", "c81", "mary", "smith", "f", 1, None,
                     "mill ln", R.DAUGHTER),
        PersonRecord("1881_9", "d81", "john", "ashworth", "m", 41, "farmer",
                     "moor end", R.HEAD),
        PersonRecord("1881_10", "d81", "elizabeth", "ashworth", "f", 40, None,
                     "moor end", R.WIFE),
        PersonRecord("1881_11", "d81", "william", "ashworth", "m", 15, None,
                     "moor end", R.SON),
    ]
    return CensusDataset.from_records(1881, records)


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="re-record the golden-run fixtures in tests/goldens/ "
        "instead of diffing against them",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    """True when the run should refresh fixtures instead of checking."""
    return request.config.getoption("--update-goldens")


@pytest.fixture
def census_1871() -> CensusDataset:
    return build_1871_dataset()


@pytest.fixture
def census_1881() -> CensusDataset:
    return build_1881_dataset()


@pytest.fixture
def example_config() -> LinkageConfig:
    """Configuration suited to the tiny running example: exact candidate
    generation and a relaxed remaining threshold (so that Alice's
    surname change is recoverable)."""
    return LinkageConfig(
        blocking="cross",
        remaining_threshold=0.6,
        stop_on_empty_round=False,
    )


@pytest.fixture(scope="session")
def small_series():
    """A session-cached 3-snapshot synthetic series (fast, deterministic)."""
    return generate_series(
        GeneratorConfig(seed=99, num_snapshots=3, initial_households=60)
    )


@pytest.fixture(scope="session")
def small_pair():
    """A session-cached 2-snapshot pair for linkage tests."""
    return generate_series(
        GeneratorConfig(
            seed=7, start_year=1871, num_snapshots=2, initial_households=80
        )
    )
