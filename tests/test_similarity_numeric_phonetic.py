"""Unit tests for numeric similarities and phonetic encodings."""

import pytest

from repro.similarity.numeric import (
    absolute_difference_similarity,
    age_difference_similarity,
    gaussian_similarity,
    normalised_age_difference,
    temporal_age_similarity,
)
from repro.similarity.phonetic import nysiis, phonetic_name_key, soundex


class TestNumeric:
    def test_absolute_difference(self):
        assert absolute_difference_similarity(10, 10, 3) == 1.0
        assert absolute_difference_similarity(10, 13, 3) == 0.0
        assert absolute_difference_similarity(10, 11.5, 3) == pytest.approx(0.5)

    def test_absolute_difference_validation(self):
        with pytest.raises(ValueError):
            absolute_difference_similarity(1, 2, 0)

    def test_gaussian(self):
        assert gaussian_similarity(5, 5, 2) == 1.0
        assert gaussian_similarity(5, 7, 2) < 1.0
        with pytest.raises(ValueError):
            gaussian_similarity(1, 2, 0)

    def test_temporal_age_exact_gap(self):
        assert temporal_age_similarity(30, 40, 10) == 1.0

    def test_temporal_age_with_drift(self):
        assert temporal_age_similarity(30, 41, 10) == pytest.approx(2 / 3)
        assert temporal_age_similarity(30, 44, 10) == 0.0

    def test_temporal_age_missing(self):
        assert temporal_age_similarity(None, 40, 10) == 0.0
        assert temporal_age_similarity(30, None, 10) == 0.0

    def test_normalised_age_difference(self):
        assert normalised_age_difference(30, 40, 10) == 0
        assert normalised_age_difference(30, 37, 10) == 3
        assert normalised_age_difference(None, 40, 10) is None

    def test_age_difference_similarity(self):
        assert age_difference_similarity(31, 31, 3) == 1.0
        assert age_difference_similarity(31, 32, 3) == pytest.approx(2 / 3)
        assert age_difference_similarity(31, 35, 3) == 0.0
        assert age_difference_similarity(None, 31, 3) == 0.0


class TestSoundex:
    def test_known_codes(self):
        assert soundex("robert") == "R163"
        assert soundex("rupert") == "R163"
        assert soundex("ashworth") == "A263"

    def test_spelling_variants_share_code(self):
        assert soundex("smith") == soundex("smyth")
        assert soundex("whittaker") == soundex("whitaker")

    def test_hw_do_not_separate(self):
        # Classic rule: 'h'/'w' do not reset the previous code.
        assert soundex("ashcraft") == "A261"

    def test_empty_and_non_alpha(self):
        assert soundex("") == ""
        assert soundex("123") == ""

    def test_padding(self):
        assert soundex("lee") == "L000"

    def test_case_insensitive(self):
        assert soundex("Ashworth") == soundex("ASHWORTH")


class TestNysiis:
    def test_returns_upper_code(self):
        code = nysiis("ashworth")
        assert code and code == code.upper()

    def test_variants_share_code(self):
        assert nysiis("sutcliffe") == nysiis("sutcliff")

    def test_empty(self):
        assert nysiis("") == ""

    def test_deterministic(self):
        assert nysiis("greenwood") == nysiis("greenwood")

    def test_finer_than_soundex_for_some_pairs(self):
        # NYSIIS distinguishes names that Soundex conflates.
        assert soundex("catherine") == soundex("cotroneo") or True
        assert nysiis("catherine") != nysiis("kathy")


class TestPhoneticKey:
    def test_combined_key(self):
        key = phonetic_name_key("john", "ashworth")
        assert key == "A263|j"

    def test_missing_components(self):
        assert phonetic_name_key("", "ashworth") == "A263|"
        assert phonetic_name_key("john", "") == "|j"
