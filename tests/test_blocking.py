"""Unit tests for blocking (candidate-pair generation)."""

import pytest

import repro.model.roles as R
from repro.blocking.pairs import (
    UnionBlocker,
    pairs_above_threshold,
    pairs_completeness,
    reduction_ratio,
    score_pairs,
)
from repro.blocking.qgram_index import QGramIndexBlocker
from repro.blocking.sorted_neighbourhood import SortedNeighbourhoodBlocker
from repro.blocking.standard import (
    NO_BLOCK_PREFIX,
    CrossProductBlocker,
    StandardBlocker,
    firstname_soundex_key,
    no_block_key,
    sex_birthyear_key,
    surname_soundex_initial_key,
    surname_soundex_key,
)
from repro.model.records import PersonRecord
from repro.similarity.vector import build_similarity_function


def record(record_id, first, last, household="h1"):
    return PersonRecord(record_id, household, first, last, "m", 30, role=R.HEAD)


OLD = [
    record("o1", "john", "ashworth"),
    record("o2", "mary", "smith"),
    record("o3", "robert", "holt"),
]
NEW = [
    record("n1", "john", "ashworthe"),  # surname variant
    record("n2", "mary", "taylor"),  # surname changed (marriage)
    record("n3", "orbert", "holt"),  # first-letter typo
]


class TestKeyFunctions:
    def test_surname_soundex_key(self):
        assert surname_soundex_key(OLD[0]) == "A263"

    def test_initial_key_includes_first_letter(self):
        assert surname_soundex_initial_key(OLD[0]).endswith("|j")

    def test_firstname_key(self):
        assert firstname_soundex_key(OLD[1]) == firstname_soundex_key(NEW[1])

    def test_missing_attributes_give_empty_key(self):
        ghost = PersonRecord("x", "h", None, None, role=R.HEAD)
        assert surname_soundex_key(ghost) == ""


class TestSexBirthyearKey:
    """Regression: records missing age or sex must not share one key.

    ``sex_birthyear_key`` used to return ``""`` for them; the standard
    blocker happens to skip empty keys, but any consumer grouping by key
    would have collapsed the whole missing-data population into a single
    giant block.  The key function now returns a per-record no-block
    sentinel instead."""

    def test_complete_record_keys_by_sex_and_birth_decade(self):
        person = PersonRecord("p1", "h1", "ann", "holt", "f", 34, role=R.HEAD)
        assert sex_birthyear_key(person, year=1890) == "f|185"

    def test_missing_age_gets_no_block_sentinel(self):
        person = PersonRecord("p1", "h1", "ann", "holt", "f", None, role=R.HEAD)
        assert sex_birthyear_key(person, year=1890) == no_block_key(person)

    def test_missing_sex_gets_no_block_sentinel(self):
        person = PersonRecord("p1", "h1", "ann", "holt", None, 34, role=R.HEAD)
        assert sex_birthyear_key(person, year=1890).startswith(NO_BLOCK_PREFIX)

    def test_sentinels_are_unique_per_record(self):
        """Even a naive group-by-key consumer keeps them in singletons."""
        ghosts = [
            PersonRecord(f"g{i}", "h", "x", "y", None, None, role=R.HEAD)
            for i in range(5)
        ]
        keys = {sex_birthyear_key(ghost) for ghost in ghosts}
        assert len(keys) == len(ghosts)

    def test_standard_blocker_never_pairs_sentinel_records(self):
        old_ghosts = [
            PersonRecord(f"o{i}", "h", "x", "y", None, None, role=R.HEAD)
            for i in range(3)
        ]
        new_ghosts = [
            PersonRecord(f"n{i}", "h", "x", "y", None, None, role=R.HEAD)
            for i in range(3)
        ]
        blocker = StandardBlocker(key_functions=(sex_birthyear_key,))
        assert not blocker.candidate_pairs(old_ghosts, new_ghosts)


class TestQGramIndexBlocker:
    def test_recovers_pair_missed_by_soundex(self):
        """'catherine'/'katherine' diverge on the Soundex first letter but
        share plenty of bigrams — the index blocker's reason to exist."""
        old = [record("o1", "catherine", "brown")]
        new = [record("n1", "katherine", "taylor")]  # surname changed too
        assert ("o1", "n1") not in StandardBlocker().candidate_pairs(old, new)
        assert ("o1", "n1") in QGramIndexBlocker().candidate_pairs(old, new)

    def test_min_common_prunes_weak_overlap(self):
        old = [record("o1", "amy", "pool")]
        new = [record("n1", "may", "lowe")]  # few shared distinct grams
        loose = QGramIndexBlocker(min_common=1).candidate_pairs(old, new)
        strict = QGramIndexBlocker(min_common=4).candidate_pairs(old, new)
        assert strict <= loose

    def test_missing_attribute_values_never_block(self):
        old = [PersonRecord("o1", "h", None, None, "m", 30, role=R.HEAD)]
        new = [PersonRecord("n1", "h", None, None, "m", 30, role=R.HEAD)]
        assert not QGramIndexBlocker().candidate_pairs(old, new)

    def test_max_posting_size_skips_frequent_grams(self):
        many_old = [record(f"o{i}", "ann", "smith") for i in range(6)]
        new = [record("n1", "ann", "smith")]
        unlimited = QGramIndexBlocker().candidate_pairs(many_old, new)
        limited = QGramIndexBlocker(max_posting_size=3).candidate_pairs(
            many_old, new
        )
        assert len(unlimited) == 6
        assert not limited

    def test_attributes_indexed_independently(self):
        """Grams of different attributes never match each other."""
        old = [record("o1", "holt", "xxxx")]
        new = [record("n1", "zzzz", "holt")]
        assert not QGramIndexBlocker().candidate_pairs(old, new)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QGramIndexBlocker(attributes=())
        with pytest.raises(ValueError):
            QGramIndexBlocker(min_common=0)


class TestUnionBlocker:
    def test_union_of_member_pairs(self):
        union = UnionBlocker((StandardBlocker(), QGramIndexBlocker()))
        pairs = union.candidate_pairs(OLD, NEW)
        assert StandardBlocker().candidate_pairs(OLD, NEW) <= pairs
        assert QGramIndexBlocker().candidate_pairs(OLD, NEW) <= pairs

    def test_requires_members(self):
        with pytest.raises(ValueError):
            UnionBlocker(())


class TestStandardBlocker:
    def test_surname_variant_survives(self):
        pairs = StandardBlocker().candidate_pairs(OLD, NEW)
        assert ("o1", "n1") in pairs

    def test_surname_change_recovered_by_firstname_pass(self):
        pairs = StandardBlocker().candidate_pairs(OLD, NEW)
        assert ("o2", "n2") in pairs

    def test_first_letter_typo_recovered_by_surname_pass(self):
        pairs = StandardBlocker().candidate_pairs(OLD, NEW)
        assert ("o3", "n3") in pairs

    def test_unrelated_names_excluded(self):
        pairs = StandardBlocker().candidate_pairs(OLD, NEW)
        assert ("o1", "n2") not in pairs

    def test_empty_key_never_blocks(self):
        ghost = PersonRecord("gx", "h", None, None, role=R.HEAD)
        pairs = StandardBlocker().candidate_pairs([ghost], NEW)
        assert not pairs

    def test_max_block_size_skips_heavy_blocks(self):
        many_old = [record(f"o{i}", "john", "smith") for i in range(5)]
        many_new = [record(f"n{i}", "john", "smith") for i in range(5)]
        unlimited = StandardBlocker().candidate_pairs(many_old, many_new)
        limited = StandardBlocker(max_block_size=3).candidate_pairs(
            many_old, many_new
        )
        assert len(unlimited) == 25
        assert len(limited) == 0

    def test_requires_key_functions(self):
        with pytest.raises(ValueError):
            StandardBlocker(key_functions=())


class TestCrossProduct:
    def test_all_pairs(self):
        pairs = CrossProductBlocker().candidate_pairs(OLD, NEW)
        assert len(pairs) == 9


class TestSortedNeighbourhood:
    def test_window_finds_near_sorted_names(self):
        pairs = SortedNeighbourhoodBlocker(window_size=4).candidate_pairs(OLD, NEW)
        assert ("o1", "n1") in pairs

    def test_only_cross_dataset_pairs(self):
        pairs = SortedNeighbourhoodBlocker(window_size=10).candidate_pairs(OLD, NEW)
        for old_id, new_id in pairs:
            assert old_id.startswith("o")
            assert new_id.startswith("n")

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SortedNeighbourhoodBlocker(window_size=1)

    def test_larger_window_superset(self):
        small = SortedNeighbourhoodBlocker(window_size=2).candidate_pairs(OLD, NEW)
        large = SortedNeighbourhoodBlocker(window_size=6).candidate_pairs(OLD, NEW)
        assert small <= large


class TestPairUtilities:
    def test_score_pairs(self):
        func = build_similarity_function(
            [("first_name", "qgram", 0.5), ("surname", "qgram", 0.5)], 0.5
        )
        old_index = {r.record_id: r for r in OLD}
        new_index = {r.record_id: r for r in NEW}
        scores = score_pairs([("o1", "n1")], old_index, new_index, func)
        assert scores[("o1", "n1")] > 0.8

    def test_pairs_above_threshold_sorted(self):
        scores = {("b", "y"): 0.9, ("a", "x"): 0.8, ("c", "z"): 0.1}
        assert pairs_above_threshold(scores, 0.5) == [("a", "x"), ("b", "y")]

    def test_reduction_ratio(self):
        assert reduction_ratio(10, 10, 10) == pytest.approx(0.9)
        assert reduction_ratio(0, 0, 10) == 0.0

    def test_pairs_completeness(self):
        candidates = {("o1", "n1"), ("o2", "n2")}
        assert pairs_completeness(candidates, [("o1", "n1")]) == 1.0
        assert pairs_completeness(candidates, [("o1", "n1"), ("o3", "n3")]) == 0.5
        assert pairs_completeness(candidates, []) == 1.0
