"""Unit tests for blocking (candidate-pair generation)."""

import pytest

import repro.model.roles as R
from repro.blocking.pairs import (
    pairs_above_threshold,
    pairs_completeness,
    reduction_ratio,
    score_pairs,
)
from repro.blocking.sorted_neighbourhood import SortedNeighbourhoodBlocker
from repro.blocking.standard import (
    CrossProductBlocker,
    StandardBlocker,
    firstname_soundex_key,
    surname_soundex_initial_key,
    surname_soundex_key,
)
from repro.model.records import PersonRecord
from repro.similarity.vector import build_similarity_function


def record(record_id, first, last, household="h1"):
    return PersonRecord(record_id, household, first, last, "m", 30, role=R.HEAD)


OLD = [
    record("o1", "john", "ashworth"),
    record("o2", "mary", "smith"),
    record("o3", "robert", "holt"),
]
NEW = [
    record("n1", "john", "ashworthe"),  # surname variant
    record("n2", "mary", "taylor"),  # surname changed (marriage)
    record("n3", "orbert", "holt"),  # first-letter typo
]


class TestKeyFunctions:
    def test_surname_soundex_key(self):
        assert surname_soundex_key(OLD[0]) == "A263"

    def test_initial_key_includes_first_letter(self):
        assert surname_soundex_initial_key(OLD[0]).endswith("|j")

    def test_firstname_key(self):
        assert firstname_soundex_key(OLD[1]) == firstname_soundex_key(NEW[1])

    def test_missing_attributes_give_empty_key(self):
        ghost = PersonRecord("x", "h", None, None, role=R.HEAD)
        assert surname_soundex_key(ghost) == ""


class TestStandardBlocker:
    def test_surname_variant_survives(self):
        pairs = StandardBlocker().candidate_pairs(OLD, NEW)
        assert ("o1", "n1") in pairs

    def test_surname_change_recovered_by_firstname_pass(self):
        pairs = StandardBlocker().candidate_pairs(OLD, NEW)
        assert ("o2", "n2") in pairs

    def test_first_letter_typo_recovered_by_surname_pass(self):
        pairs = StandardBlocker().candidate_pairs(OLD, NEW)
        assert ("o3", "n3") in pairs

    def test_unrelated_names_excluded(self):
        pairs = StandardBlocker().candidate_pairs(OLD, NEW)
        assert ("o1", "n2") not in pairs

    def test_empty_key_never_blocks(self):
        ghost = PersonRecord("gx", "h", None, None, role=R.HEAD)
        pairs = StandardBlocker().candidate_pairs([ghost], NEW)
        assert not pairs

    def test_max_block_size_skips_heavy_blocks(self):
        many_old = [record(f"o{i}", "john", "smith") for i in range(5)]
        many_new = [record(f"n{i}", "john", "smith") for i in range(5)]
        unlimited = StandardBlocker().candidate_pairs(many_old, many_new)
        limited = StandardBlocker(max_block_size=3).candidate_pairs(
            many_old, many_new
        )
        assert len(unlimited) == 25
        assert len(limited) == 0

    def test_requires_key_functions(self):
        with pytest.raises(ValueError):
            StandardBlocker(key_functions=())


class TestCrossProduct:
    def test_all_pairs(self):
        pairs = CrossProductBlocker().candidate_pairs(OLD, NEW)
        assert len(pairs) == 9


class TestSortedNeighbourhood:
    def test_window_finds_near_sorted_names(self):
        pairs = SortedNeighbourhoodBlocker(window_size=4).candidate_pairs(OLD, NEW)
        assert ("o1", "n1") in pairs

    def test_only_cross_dataset_pairs(self):
        pairs = SortedNeighbourhoodBlocker(window_size=10).candidate_pairs(OLD, NEW)
        for old_id, new_id in pairs:
            assert old_id.startswith("o")
            assert new_id.startswith("n")

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SortedNeighbourhoodBlocker(window_size=1)

    def test_larger_window_superset(self):
        small = SortedNeighbourhoodBlocker(window_size=2).candidate_pairs(OLD, NEW)
        large = SortedNeighbourhoodBlocker(window_size=6).candidate_pairs(OLD, NEW)
        assert small <= large


class TestPairUtilities:
    def test_score_pairs(self):
        func = build_similarity_function(
            [("first_name", "qgram", 0.5), ("surname", "qgram", 0.5)], 0.5
        )
        old_index = {r.record_id: r for r in OLD}
        new_index = {r.record_id: r for r in NEW}
        scores = score_pairs([("o1", "n1")], old_index, new_index, func)
        assert scores[("o1", "n1")] > 0.8

    def test_pairs_above_threshold_sorted(self):
        scores = {("b", "y"): 0.9, ("a", "x"): 0.8, ("c", "z"): 0.1}
        assert pairs_above_threshold(scores, 0.5) == [("a", "x"), ("b", "y")]

    def test_reduction_ratio(self):
        assert reduction_ratio(10, 10, 10) == pytest.approx(0.9)
        assert reduction_ratio(0, 0, 10) == 0.0

    def test_pairs_completeness(self):
        candidates = {("o1", "n1"), ("o2", "n2")}
        assert pairs_completeness(candidates, [("o1", "n1")]) == 1.0
        assert pairs_completeness(candidates, [("o1", "n1"), ("o3", "n3")]) == 0.5
        assert pairs_completeness(candidates, []) == 1.0
