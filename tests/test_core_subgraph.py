"""Unit tests for subgraph matching (Section 3.3, Fig. 4)."""

import pytest

from repro.blocking.standard import CrossProductBlocker
from repro.core.config import LinkageConfig
from repro.core.enrichment import complete_groups
from repro.core.prematching import prematching
from repro.core.subgraph import (
    GroupPairIndex,
    brute_force_group_pairs,
    build_all_subgraphs,
    build_subgraph,
    candidate_group_pairs,
)
from repro.instrumentation import (
    GROUP_PAIRS_CANDIDATES,
    GROUP_PAIRS_SKIPPED,
    SUBGRAPHS_BUILT,
    Instrumentation,
)
from repro.model.mappings import RecordMapping, household_of_map
from repro.similarity.vector import build_similarity_function

NAME_FUNC = build_similarity_function(
    [("first_name", "qgram", 0.5), ("surname", "qgram", 0.5)], 1.0
)


@pytest.fixture
def setup(census_1871, census_1881):
    prematch = prematching(
        list(census_1871.iter_records()),
        list(census_1881.iter_records()),
        NAME_FUNC,
        CrossProductBlocker(),
    )
    enriched_old = complete_groups(census_1871)
    enriched_new = complete_groups(census_1881)
    config = LinkageConfig(blocking="cross")
    return prematch, enriched_old, enriched_new, config


class TestFig4:
    def test_true_pair_keeps_three_vertices(self, setup):
        prematch, old, new, config = setup
        subgraph = build_subgraph(old["a71"], new["a81"], prematch, config)
        assert subgraph is not None
        assert subgraph.size == 3
        assert subgraph.old_record_ids == {"1871_1", "1871_2", "1871_4"}
        assert subgraph.new_record_ids == {"1881_1", "1881_2", "1881_3"}
        assert len(subgraph.edges) == 3

    def test_decoy_pair_reduced(self, setup):
        """(a71, d81) shares labels A, B, C but only the spouse edge has a
        similar age difference, so the subgraph shrinks (Fig. 4, right).
        Reproduced with the record-level age filter relaxed to the
        paper's setting (it would otherwise drop John and Elizabeth as vertices and
        reject the decoy outright — see TestAgeFilters)."""
        prematch, old, new, _ = setup
        relaxed = LinkageConfig(blocking="cross", max_normalised_age_difference=99.0)
        subgraph = build_subgraph(old["a71"], new["d81"], prematch, relaxed)
        assert subgraph is not None
        assert subgraph.size == 2  # John + Elizabeth only
        assert subgraph.old_record_ids == {"1871_1", "1871_2"}
        assert len(subgraph.edges) == 1

    def test_decoy_pair_rejected_with_default_age_filter(self, setup):
        """With the default footnote-2 vertex filter, the decoy loses
        Elizabeth (37 -> 40 is a 7-year deviation) and then every edge:
        the decoy household is rejected before scoring even starts."""
        prematch, old, new, config = setup
        assert build_subgraph(old["a71"], new["d81"], prematch, config) is None

    def test_edge_totals_record_full_graph_sizes(self, setup):
        prematch, old, new, config = setup
        subgraph = build_subgraph(old["a71"], new["a81"], prematch, config)
        assert subgraph.old_edge_total == 10  # 5 members
        assert subgraph.new_edge_total == 3  # 3 members

    def test_unrelated_pair_yields_none(self, setup):
        prematch, old, new, config = setup
        assert build_subgraph(old["b71"], new["a81"], prematch, config) is None

    def test_single_shared_member_pruned(self, setup):
        """(b71, c81) shares only Steve; with no matching edge the vertex
        is pruned and no subgraph remains (movers are left to the
        remaining pass)."""
        prematch, old, new, config = setup
        assert build_subgraph(old["b71"], new["c81"], prematch, config) is None

    def test_singleton_allowed_when_configured(self, setup):
        prematch, old, new, config = setup
        config.allow_singleton_subgraphs = True
        subgraph = build_subgraph(old["b71"], new["c81"], prematch, config)
        assert subgraph is not None
        assert subgraph.size == 1
        assert not subgraph.edges


class TestAgeFilters:
    def test_vertex_age_filter(self, setup, census_1871, census_1881):
        """A pair whose normalised age difference exceeds the bound must
        not become a vertex even with identical names (footnote 2)."""
        prematch, old, new, config = setup
        # William Ashworth 1871 (age 2) vs the d-household William (15):
        # expected age 12, deviation 3 -> allowed; tighten the config to
        # exclude it and the vertex disappears.
        config.max_normalised_age_difference = 2.0
        subgraph = build_subgraph(old["a71"], new["d81"], prematch, config)
        assert subgraph is None or "1871_4" not in subgraph.old_record_ids

    def test_edge_age_deviation_filter(self, setup):
        prematch, old, new, config = setup
        config.max_age_diff_deviation = 0.0
        subgraph = build_subgraph(old["a71"], new["d81"], prematch, config)
        # The spouse edge (diff 2 vs 1) no longer matches.
        assert subgraph is None


class TestAnchors:
    def test_anchor_supports_straggler(self, setup):
        """With John/Elizabeth anchored, William alone still exhibits a
        matching parent-child edge to his anchored parents."""
        prematch, old, new, config = setup
        anchors = [("1871_1", "1881_1"), ("1871_2", "1881_2")]
        subgraph = build_subgraph(
            old["a71"], new["a81"], prematch, config, anchors=anchors
        )
        assert subgraph is not None
        assert subgraph.num_anchors == 2
        assert subgraph.old_record_ids == {"1871_4"}  # only the new link
        assert subgraph.anchor_vertices == sorted(anchors)

    def test_no_new_vertex_returns_none(self, setup):
        prematch, old, new, config = setup
        anchors = [
            ("1871_1", "1881_1"),
            ("1871_2", "1881_2"),
            ("1871_4", "1881_3"),
        ]
        assert (
            build_subgraph(old["a71"], new["a81"], prematch, config, anchors)
            is None
        )


class TestCandidateGroupPairs:
    def test_pairs_from_matched_records(self, setup, census_1871, census_1881):
        prematch, old, new, config = setup
        pairs = candidate_group_pairs(
            prematch,
            household_of_map(census_1871),
            household_of_map(census_1881),
        )
        assert ("a71", "a81") in pairs
        assert ("a71", "d81") in pairs
        assert ("b71", "b81") in pairs
        assert ("b71", "c81") in pairs
        assert ("a71", "c81") not in pairs  # Alice is not pre-matched at δ=1

    def test_build_all_subgraphs(self, setup):
        prematch, old, new, config = setup
        subgraphs = build_all_subgraphs(prematch, old, new, config)
        keys = {(s.old_group_id, s.new_group_id) for s in subgraphs}
        # The decoy (a71, d81) is rejected by the default vertex age
        # filter; (b71, c81) has no surviving edge.
        assert keys == {("a71", "a81"), ("b71", "b81")}

    def test_build_all_with_record_mapping_anchors(self, setup):
        prematch, old, new, config = setup
        mapping = RecordMapping([("1871_1", "1881_1")])
        subgraphs = build_all_subgraphs(
            prematch, old, new, config, record_mapping=mapping
        )
        target = next(
            s for s in subgraphs if (s.old_group_id, s.new_group_id) == ("a71", "a81")
        )
        assert target.num_anchors == 1


class TestGroupPairIndex:
    def test_index_matches_brute_force(self, setup):
        prematch, old, new, _ = setup
        index = GroupPairIndex(old, new)
        assert index.candidate_pairs(prematch) == brute_force_group_pairs(
            prematch, old, new
        )

    def test_cross_product_size(self, setup):
        _, old, new, _ = setup
        index = GroupPairIndex(old, new)
        assert index.cross_product_size == len(old) * len(new)

    def test_index_counters(self, setup):
        """The indexed path reports how much of the cross product the
        inverted index never examined."""
        prematch, old, new, config = setup
        collector = Instrumentation()
        index = GroupPairIndex(old, new)
        subgraphs = build_all_subgraphs(
            prematch, old, new, config,
            instrumentation=collector, index=index,
        )
        candidates = collector.value(GROUP_PAIRS_CANDIDATES)
        assert candidates == len(index.candidate_pairs(prematch))
        assert (
            collector.value(GROUP_PAIRS_SKIPPED)
            == index.cross_product_size - candidates
        )
        assert collector.value(SUBGRAPHS_BUILT) == len(subgraphs)

    def test_brute_force_mode_skips_nothing(self, setup):
        """With group_pair_indexing off the full cross product is
        examined — the skip counter must stay 0 while the resulting
        subgraphs are identical to the indexed path."""
        prematch, old, new, config = setup
        indexed = build_all_subgraphs(prematch, old, new, config)
        config.group_pair_indexing = False
        collector = Instrumentation()
        brute = build_all_subgraphs(
            prematch, old, new, config, instrumentation=collector
        )
        assert collector.value(GROUP_PAIRS_SKIPPED) == 0
        assert [
            (s.old_group_id, s.new_group_id, s.vertices) for s in brute
        ] == [
            (s.old_group_id, s.new_group_id, s.vertices) for s in indexed
        ]

    def test_groups_by_label_buckets(self, setup, census_1871, census_1881):
        prematch, old, new, _ = setup
        index = GroupPairIndex(old, new)
        buckets = index.groups_by_label(prematch)
        # John Ashworth's label connects a71 to both a81 and the decoy.
        john_label = prematch.labels["1871_1"]
        old_groups, new_groups = buckets[john_label]
        assert "a71" in old_groups
        assert {"a81", "d81"} <= new_groups
