"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.model import io as model_io


@pytest.fixture
def data_dir(tmp_path):
    code = main([
        "generate",
        "--out", str(tmp_path),
        "--households", "40",
        "--snapshots", "2",
        "--seed", "13",
    ])
    assert code == 0
    return tmp_path


class TestGenerate:
    def test_files_written(self, data_dir):
        assert (data_dir / "census_1871.csv").exists()
        assert (data_dir / "census_1881.csv").exists()
        assert (data_dir / "truth_records_1871_1881.csv").exists()
        assert (data_dir / "truth_groups_1871_1881.csv").exists()

    def test_datasets_loadable(self, data_dir):
        dataset = model_io.read_dataset(data_dir / "census_1871.csv")
        assert dataset.year == 1871
        assert len(dataset) > 50


class TestLink:
    def test_link_and_outputs(self, data_dir, capsys):
        records_path = data_dir / "pred_records.csv"
        groups_path = data_dir / "pred_groups.csv"
        code = main([
            "link",
            str(data_dir / "census_1871.csv"),
            str(data_dir / "census_1881.csv"),
            "--records", str(records_path),
            "--groups", str(groups_path),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "record links" in output
        predicted = model_io.read_record_mapping(records_path)
        assert len(predicted) > 0
        groups = model_io.read_group_mapping(groups_path)
        assert len(groups) > 0


class TestLinkCheckpoints:
    def test_checkpoint_then_resume(self, data_dir, capsys):
        ckpt = data_dir / "ckpt"
        argv = [
            "link",
            str(data_dir / "census_1871.csv"),
            str(data_dir / "census_1881.csv"),
            "--checkpoint-dir", str(ckpt),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert (ckpt / "final.json").exists()
        assert any(
            path.name.startswith("round_") for path in ckpt.iterdir()
        )
        # Resume from the completed run: same link counts, no recompute.
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out.splitlines()[0] == first.splitlines()[0]

    def test_resume_requires_checkpoint_dir(self, data_dir, capsys):
        code = main([
            "link",
            str(data_dir / "census_1871.csv"),
            str(data_dir / "census_1881.csv"),
            "--resume",
        ])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_checkpoints_inspection(self, data_dir, capsys):
        ckpt = data_dir / "ckpt2"
        main([
            "link",
            str(data_dir / "census_1871.csv"),
            str(data_dir / "census_1881.csv"),
            "--checkpoint-dir", str(ckpt),
            "--checkpoint-every", "2",
        ])
        capsys.readouterr()
        assert main(["checkpoints", str(ckpt)]) == 0
        output = capsys.readouterr().out
        assert "final.json" in output
        assert "phase" in output  # header line

    def test_checkpoints_empty_directory(self, tmp_path, capsys):
        assert main(["checkpoints", str(tmp_path)]) == 0
        assert "no checkpoints" in capsys.readouterr().out

    def test_checkpoints_reports_corrupt_file(self, data_dir, capsys):
        ckpt = data_dir / "ckpt3"
        main([
            "link",
            str(data_dir / "census_1871.csv"),
            str(data_dir / "census_1881.csv"),
            "--checkpoint-dir", str(ckpt),
        ])
        capsys.readouterr()
        (ckpt / "final.json").write_text("garbage", encoding="utf-8")
        assert main(["checkpoints", str(ckpt)]) == 0
        assert "CORRUPT" in capsys.readouterr().out


class TestEvaluate:
    def test_evaluate_prints_quality(self, data_dir, capsys):
        records_path = data_dir / "pred_records.csv"
        main([
            "link",
            str(data_dir / "census_1871.csv"),
            str(data_dir / "census_1881.csv"),
            "--records", str(records_path),
        ])
        capsys.readouterr()
        code = main([
            "evaluate",
            str(records_path),
            str(data_dir / "truth_records_1871_1881.csv"),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "P=" in output and "F=" in output


class TestEvolve:
    def test_evolve_over_series(self, tmp_path, capsys):
        main([
            "generate",
            "--out", str(tmp_path),
            "--households", "30",
            "--snapshots", "3",
            "--start-year", "1851",
        ])
        capsys.readouterr()
        code = main([
            "evolve",
            str(tmp_path / "census_1851.csv"),
            str(tmp_path / "census_1861.csv"),
            str(tmp_path / "census_1871.csv"),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "preserve_G" in output
        assert "Largest connected component" in output


class TestLinkValidate:
    def test_validate_flag_accepted(self, data_dir, capsys):
        code = main([
            "link",
            str(data_dir / "census_1871.csv"),
            str(data_dir / "census_1881.csv"),
            "--validate",
        ])
        assert code == 0
        assert "record links" in capsys.readouterr().out


class TestGolden:
    def test_record_then_check_roundtrip(self, tmp_path, capsys):
        code = main([
            "golden", "--record", "--dir", str(tmp_path),
            "--names", "seed7-default",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "recorded" in output
        assert (tmp_path / "seed7-default.json").exists()

        code = main([
            "golden", "--check", "--dir", str(tmp_path),
            "--names", "seed7-default",
        ])
        assert code == 0
        assert "seed7-default: ok" in capsys.readouterr().out

    def test_check_mismatch_exits_nonzero(self, tmp_path, capsys):
        main([
            "golden", "--record", "--dir", str(tmp_path),
            "--names", "seed7-default",
        ])
        capsys.readouterr()
        fixture = tmp_path / "seed7-default.json"
        fixture.write_text(
            fixture.read_text(encoding="utf-8").replace(
                '"num_record_links": ', '"num_record_links": 9'
            ),
            encoding="utf-8",
        )
        code = main([
            "golden", "--check", "--dir", str(tmp_path),
            "--names", "seed7-default",
        ])
        assert code == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_requires_exactly_one_mode(self, capsys):
        assert main(["golden"]) == 2
        assert main(["golden", "--record", "--check"]) == 2
        assert "choose exactly one" in capsys.readouterr().err

    def test_unknown_name_rejected(self, capsys):
        code = main(["golden", "--check", "--names", "nope"])
        assert code == 2
        assert "nope" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_link_defaults(self):
        args = build_parser().parse_args(["link", "a.csv", "b.csv"])
        assert args.delta_high == 0.7
        assert args.beta == 0.7
