"""Unit tests for greedy group-link selection (Algorithm 2)."""

import pytest

from repro.core.selection import select_group_matches
from repro.core.subgraph import SubgraphMatch
from repro.model.mappings import MappingConflictError


def subgraph(old_group, new_group, vertices, g_sim, num_anchors=0):
    return SubgraphMatch(
        old_group_id=old_group,
        new_group_id=new_group,
        vertices=vertices,
        edges=[],
        old_edge_total=3,
        new_edge_total=3,
        num_anchors=num_anchors,
        g_sim=g_sim,
    )


class TestSelection:
    def test_best_candidate_wins(self):
        good = subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.9)
        bad = subgraph("g1", "h2", [("o1", "n3"), ("o2", "n4")], 0.5)
        result = select_group_matches([bad, good])
        assert ("g1", "h1") in result.group_mapping
        assert ("g1", "h2") not in result.group_mapping
        assert bad in result.rejected

    def test_disjoint_subgraphs_both_accepted(self):
        """A household split: the same old group links to two new groups
        with disjoint record sets (N:M group mapping)."""
        first = subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.9)
        second = subgraph("g1", "h2", [("o3", "n3"), ("o4", "n4")], 0.8)
        result = select_group_matches([first, second])
        assert len(result.group_mapping) == 2
        assert result.group_mapping.partners_of_old("g1") == {"h1", "h2"}

    def test_overlap_on_new_side_rejected(self):
        first = subgraph("g1", "h1", [("o1", "n1")], 0.9)
        second = subgraph("g2", "h1", [("o9", "n1")], 0.8)
        result = select_group_matches([first, second])
        assert ("g2", "h1") not in result.group_mapping

    def test_record_mapping_extraction(self):
        chosen = subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.9)
        result = select_group_matches([chosen])
        mapping = result.extract_record_mapping()
        assert mapping.pairs() == [("o1", "n1"), ("o2", "n2")]

    def test_anchors_not_extracted_as_new_links(self):
        chosen = subgraph(
            "g1", "h1", [("a1", "b1"), ("o1", "n1")], 0.9, num_anchors=1
        )
        result = select_group_matches([chosen])
        assert result.extract_record_mapping().pairs() == [("o1", "n1")]

    def test_deterministic_tie_break(self):
        left = subgraph("g1", "h1", [("o1", "n1")], 0.7)
        right = subgraph("g2", "h2", [("o2", "n2")], 0.7)
        first_run = select_group_matches([left, right]).group_mapping.pairs()
        second_run = select_group_matches([right, left]).group_mapping.pairs()
        assert first_run == second_run

    def test_larger_subgraph_preferred_on_tie(self):
        small = subgraph("g1", "h2", [("o1", "n9")], 0.7)
        large = subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.7)
        result = select_group_matches([small, large])
        assert ("g1", "h1") in result.group_mapping
        assert ("g1", "h2") not in result.group_mapping

    def test_empty_input(self):
        result = select_group_matches([])
        assert len(result.group_mapping) == 0
        assert result.accepted == []

    def test_all_records_claimed_once(self):
        subgraphs = [
            subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.9),
            subgraph("g1", "h2", [("o2", "n3")], 0.8),
            subgraph("g2", "h1", [("o3", "n2")], 0.7),
        ]
        result = select_group_matches(subgraphs)
        mapping = result.extract_record_mapping()  # must not raise
        assert mapping.get_new("o2") == "n2"
        assert not mapping.contains_old("o3")  # n2 already claimed
