"""Unit tests for greedy group-link selection (Algorithm 2)."""

import pytest

from repro.core.config import LinkageConfig
from repro.core.selection import select_group_matches
from repro.core.subgraph import SubgraphMatch
from repro.instrumentation import (
    QUEUE_POPS,
    SELECTION_REQUEUES,
    Instrumentation,
)
from repro.model.mappings import MappingConflictError


def subgraph(old_group, new_group, vertices, g_sim, num_anchors=0, edges=None):
    return SubgraphMatch(
        old_group_id=old_group,
        new_group_id=new_group,
        vertices=vertices,
        edges=edges or [],
        old_edge_total=3,
        new_edge_total=3,
        num_anchors=num_anchors,
        g_sim=g_sim,
    )


class FakePrematch:
    """The two-method surface re-scoring needs: pair_sim + cluster_size."""

    def pair_sim(self, old_id, new_id):
        return 0.8

    def cluster_size(self, record_id):
        return 1


class TestSelection:
    def test_best_candidate_wins(self):
        good = subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.9)
        bad = subgraph("g1", "h2", [("o1", "n3"), ("o2", "n4")], 0.5)
        result = select_group_matches([bad, good])
        assert ("g1", "h1") in result.group_mapping
        assert ("g1", "h2") not in result.group_mapping
        assert bad in result.rejected

    def test_disjoint_subgraphs_both_accepted(self):
        """A household split: the same old group links to two new groups
        with disjoint record sets (N:M group mapping)."""
        first = subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.9)
        second = subgraph("g1", "h2", [("o3", "n3"), ("o4", "n4")], 0.8)
        result = select_group_matches([first, second])
        assert len(result.group_mapping) == 2
        assert result.group_mapping.partners_of_old("g1") == {"h1", "h2"}

    def test_overlap_on_new_side_rejected(self):
        first = subgraph("g1", "h1", [("o1", "n1")], 0.9)
        second = subgraph("g2", "h1", [("o9", "n1")], 0.8)
        result = select_group_matches([first, second])
        assert ("g2", "h1") not in result.group_mapping

    def test_record_mapping_extraction(self):
        chosen = subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.9)
        result = select_group_matches([chosen])
        mapping = result.extract_record_mapping()
        assert mapping.pairs() == [("o1", "n1"), ("o2", "n2")]

    def test_anchors_not_extracted_as_new_links(self):
        chosen = subgraph(
            "g1", "h1", [("a1", "b1"), ("o1", "n1")], 0.9, num_anchors=1
        )
        result = select_group_matches([chosen])
        assert result.extract_record_mapping().pairs() == [("o1", "n1")]

    def test_deterministic_tie_break(self):
        left = subgraph("g1", "h1", [("o1", "n1")], 0.7)
        right = subgraph("g2", "h2", [("o2", "n2")], 0.7)
        first_run = select_group_matches([left, right]).group_mapping.pairs()
        second_run = select_group_matches([right, left]).group_mapping.pairs()
        assert first_run == second_run

    def test_larger_subgraph_preferred_on_tie(self):
        small = subgraph("g1", "h2", [("o1", "n9")], 0.7)
        large = subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.7)
        result = select_group_matches([small, large])
        assert ("g1", "h1") in result.group_mapping
        assert ("g1", "h2") not in result.group_mapping

    def test_empty_input(self):
        result = select_group_matches([])
        assert len(result.group_mapping) == 0
        assert result.accepted == []

    def test_all_records_claimed_once(self):
        subgraphs = [
            subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.9),
            subgraph("g1", "h2", [("o2", "n3")], 0.8),
            subgraph("g2", "h1", [("o3", "n2")], 0.7),
        ]
        result = select_group_matches(subgraphs)
        mapping = result.extract_record_mapping()  # must not raise
        assert mapping.get_new("o2") == "n2"
        assert not mapping.contains_old("o3")  # n2 already claimed


class TestLazyRequeue:
    """The lazy-invalidation conflict policy (requeue_stale=True)."""

    def requeue(self, subgraphs, config=None, instrumentation=None):
        return select_group_matches(
            subgraphs,
            instrumentation=instrumentation,
            prematch=FakePrematch(),
            config=config or LinkageConfig(allow_singleton_subgraphs=True),
            requeue_stale=True,
        )

    def test_stale_entry_trimmed_and_requeued(self):
        """Under the reject policy the split loses o3->n4; the requeue
        policy trims the consumed o1 vertex and recovers the link."""
        winner = subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.9)
        stale = subgraph("g1", "h2", [("o1", "n3"), ("o3", "n4")], 0.8)
        rejected = select_group_matches([winner, stale])
        assert not rejected.extract_record_mapping().contains_old("o3")

        result = self.requeue([winner, stale])
        mapping = result.extract_record_mapping()
        assert mapping.get_new("o1") == "n1"
        assert mapping.get_new("o3") == "n4"
        assert ("g1", "h2") in result.group_mapping
        assert result.disjointness_violations() == []

    def test_trimmed_subgraph_rescored(self):
        winner = subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.9)
        stale = subgraph("g1", "h2", [("o1", "n3"), ("o3", "n4")], 0.8)
        result = self.requeue([winner, stale])
        trimmed = next(s for s in result.accepted if s.new_group_id == "h2")
        assert trimmed.vertices == [("o3", "n4")]
        # Re-scored by the fake prematch, not carried over from the
        # original entry: α·0.8 + β·0 + (1-α-β)·1 with the defaults.
        config = LinkageConfig()
        expected = config.alpha * 0.8 + config.uniqueness_weight * 1.0
        assert trimmed.g_sim == pytest.approx(expected)

    def test_requeue_counter_and_pops(self):
        winner = subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.9)
        stale = subgraph("g1", "h2", [("o1", "n3"), ("o3", "n4")], 0.8)
        collector = Instrumentation()
        self.requeue([winner, stale], instrumentation=collector)
        assert collector.value(SELECTION_REQUEUES) == 1
        # winner + stale pop + the trimmed re-entry.
        assert collector.value(QUEUE_POPS) == 3

    def test_fully_consumed_entry_still_rejected(self):
        winner = subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.9)
        hopeless = subgraph("g1", "h2", [("o1", "n3"), ("o2", "n4")], 0.8)
        result = self.requeue([winner, hopeless])
        assert hopeless in result.rejected
        assert ("g1", "h2") not in result.group_mapping

    def test_singleton_gate_respected(self):
        """Without allow_singleton_subgraphs an edgeless remainder is no
        structural evidence — the trim rejects instead of requeueing."""
        winner = subgraph("g1", "h1", [("o1", "n1")], 0.9)
        stale = subgraph("g1", "h2", [("o1", "n3"), ("o3", "n4")], 0.8)
        result = self.requeue([winner, stale], config=LinkageConfig())
        assert stale in result.rejected
        assert ("g1", "h2") not in result.group_mapping

    def test_trim_keeps_surviving_edges(self):
        winner = subgraph("g1", "h1", [("o1", "n1")], 0.9)
        stale = subgraph(
            "g1", "h2",
            [("o1", "n3"), ("o3", "n4"), ("o4", "n5")],
            0.8,
            edges=[(0, 1, 0.9), (1, 2, 0.7)],
        )
        result = self.requeue([winner, stale], config=LinkageConfig())
        trimmed = next(s for s in result.accepted if s.new_group_id == "h2")
        assert trimmed.vertices == [("o3", "n4"), ("o4", "n5")]
        assert trimmed.edges == [(0, 1, 0.7)]

    def test_trim_prunes_fresh_vertices_left_without_edges(self):
        """A vertex whose only edge went to the consumed vertex loses its
        structural evidence and is pruned, as build_subgraph would."""
        winner = subgraph("g1", "h1", [("o1", "n1")], 0.9)
        stale = subgraph(
            "g1", "h2",
            [("o1", "n3"), ("o3", "n4"), ("o4", "n5"), ("o5", "n6")],
            0.8,
            edges=[(0, 1, 0.9), (2, 3, 0.7)],
        )
        result = self.requeue([winner, stale], config=LinkageConfig())
        trimmed = next(s for s in result.accepted if s.new_group_id == "h2")
        assert trimmed.vertices == [("o4", "n5"), ("o5", "n6")]
        assert trimmed.edges == [(0, 1, 0.7)]

    def test_anchors_survive_the_trim(self):
        winner = subgraph("g1", "h1", [("o1", "n1")], 0.9)
        stale = subgraph(
            "g1", "h2",
            [("a1", "b1"), ("o1", "n3"), ("o3", "n4")],
            0.8,
            num_anchors=1,
            edges=[(0, 2, 0.9)],
        )
        result = self.requeue([winner, stale], config=LinkageConfig())
        trimmed = next(s for s in result.accepted if s.new_group_id == "h2")
        assert trimmed.num_anchors == 1
        assert trimmed.vertices == [("a1", "b1"), ("o3", "n4")]
        assert result.extract_record_mapping().pairs() == [
            ("o1", "n1"), ("o3", "n4"),
        ]

    def test_requeue_requires_prematch_and_config(self):
        entry = subgraph("g1", "h1", [("o1", "n1")], 0.9)
        with pytest.raises(ValueError, match="requeue_stale"):
            select_group_matches([entry], requeue_stale=True)
        with pytest.raises(ValueError, match="requeue_stale"):
            select_group_matches(
                [entry], prematch=FakePrematch(), requeue_stale=True
            )

    def test_default_policy_unchanged_by_new_arguments(self):
        """Passing prematch/config without requeue_stale keeps the
        seed's reject semantics byte for byte."""
        winner = subgraph("g1", "h1", [("o1", "n1"), ("o2", "n2")], 0.9)
        stale = subgraph("g1", "h2", [("o1", "n3"), ("o3", "n4")], 0.8)
        plain = select_group_matches([winner, stale])
        armed = select_group_matches(
            [winner, stale], prematch=FakePrematch(), config=LinkageConfig()
        )
        assert plain.group_mapping.pairs() == armed.group_mapping.pairs()
        assert plain.rejected == armed.rejected
