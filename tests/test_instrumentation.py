"""Instrumentation layer: timers, counters and the pipeline's guarantees.

The load-bearing test here is the cache guarantee of the cross-iteration
pre-matching engine: over a full seeded linkage run, ``Sim_func.agg_sim``
is evaluated at most once per record pair — every δ round after the
first, and the final remaining pass, work from cached scores.
"""

import time
from collections import Counter

import pytest

from repro.core.config import LinkageConfig
from repro.core.pipeline import link_datasets
from repro.datagen import generate_pair
from repro.instrumentation import (
    CACHE_EVICTIONS,
    CACHE_HITS,
    CACHE_MISSES,
    FULL_AGG_SIM_CALLS,
    PAIRS_PRUNED_EARLY_EXIT,
    PAIRS_PRUNED_LENGTH,
    PAIRS_PRUNED_QGRAM,
    PAIRS_SCORED,
    QUEUE_POPS,
    SUBGRAPHS_BUILT,
    Instrumentation,
)
from repro.similarity.vector import SimilarityFunction


class TestInstrumentation:
    def test_stage_accumulates_time_and_calls(self):
        inst = Instrumentation()
        for _ in range(3):
            with inst.stage("work"):
                time.sleep(0.001)
        assert inst.stages["work"].calls == 3
        assert inst.seconds("work") >= 0.003
        assert inst.total_seconds() == inst.seconds("work")

    def test_counters(self):
        inst = Instrumentation()
        inst.count("pairs", 5)
        inst.count("pairs")
        assert inst.value("pairs") == 6
        assert inst.value("never") == 0
        inst.set_counter("pairs", 2)
        assert inst.value("pairs") == 2

    def test_merge(self):
        first = Instrumentation()
        second = Instrumentation()
        first.count("x", 1)
        second.count("x", 2)
        with second.stage("s"):
            pass
        first.merge(second)
        assert first.value("x") == 3
        assert first.stages["s"].calls == 1

    def test_report_lists_stages_and_counters(self):
        inst = Instrumentation()
        with inst.stage("prematching"):
            pass
        inst.count("pairs_scored", 42)
        report = inst.report()
        assert "prematching" in report
        assert "pairs_scored" in report
        assert "42" in report

    def test_report_on_empty_collector(self):
        assert "(empty)" in Instrumentation().report()

    def test_as_dict_round_trip(self):
        inst = Instrumentation()
        with inst.stage("s"):
            pass
        inst.count("c", 7)
        snapshot = inst.as_dict()
        assert snapshot["counters"] == {"c": 7}
        assert snapshot["stages"]["s"]["calls"] == 1


@pytest.fixture(scope="module")
def linked():
    """One seeded serial run with a call-count spy on agg_sim.

    Filtering is off: this module proves the *cache* guarantee (each pair
    computed at most once, misses == computations), which predates the
    pruning engine and must keep holding without it.  The engine
    evaluates comparators directly — invisible to an ``agg_sim`` spy and
    with its own counter semantics — and is covered by
    :class:`TestFilteringCounters` and ``tests/test_filtering_soundness``.
    The scoring backend is pinned to ``python`` for the same reason: the
    batch kernel (:mod:`repro.core.kernel`) scores whole chunks without
    ever calling ``agg_sim``, so the spy premise only holds on the
    per-pair reference path (kernel equivalence is proven separately in
    ``tests/test_kernel.py``).
    """
    series = generate_pair(seed=7, initial_households=40)
    old, new = series.datasets
    calls = Counter()
    original = SimilarityFunction.agg_sim

    def spy(self, old_record, new_record):
        calls[(old_record.record_id, new_record.record_id)] += 1
        return original(self, old_record, new_record)

    SimilarityFunction.agg_sim = spy
    try:
        result = link_datasets(
            old, new,
            LinkageConfig(filtering=False, scoring_backend="python"),
        )
    finally:
        SimilarityFunction.agg_sim = original
    return result, calls


class TestPipelineProfile:
    def test_profile_attached_with_stage_timers(self, linked):
        result, _ = linked
        profile = result.profile
        assert profile is not None
        for stage in ("enrichment", "blocking", "prematching", "subgraphs",
                      "scoring", "selection", "remaining"):
            assert stage in profile.stages
        # Alg. 2 pops every candidate subgraph from its queue exactly once.
        assert profile.value(QUEUE_POPS) == profile.value(SUBGRAPHS_BUILT)
        assert profile.value(SUBGRAPHS_BUILT) > 0

    def test_no_pair_scored_twice_across_iterations(self, linked):
        """Acceptance: zero repeat agg_sim computations for cached pairs."""
        result, calls = linked
        assert len(result.iterations) > 1  # the δ schedule actually iterated
        assert calls, "spy saw no scoring at all"
        repeated = {pair: n for pair, n in calls.items() if n > 1}
        assert not repeated, f"{len(repeated)} pairs scored more than once"

    def test_cache_counters_match_spy(self, linked):
        result, calls = linked
        profile = result.profile
        # Every miss triggered exactly one computation; no evictions on
        # this workload, so misses == unique pairs == pairs_scored.
        assert profile.value(CACHE_MISSES) == len(calls)
        assert profile.value(PAIRS_SCORED) == len(calls)
        assert profile.value(CACHE_EVICTIONS) == 0
        # The δ schedule re-tested candidate pairs from cache.
        assert profile.value(CACHE_HITS) > 0

    def test_later_rounds_score_no_candidate_pairs(self, linked):
        """From round 2 on, bulk pre-matching is pure cache lookups; the
        only new computations are lazy vertex pairs inside subgraphs."""
        result, _ = linked
        first = result.iterations[0]
        assert first.pairs_scored > 0
        assert first.cache_misses == first.pairs_scored
        for stats in result.iterations[1:]:
            assert stats.cache_hits > 0
            # Whatever was scored in a later round was a genuinely new
            # (lazily discovered) pair, never a recomputation.
            assert stats.pairs_scored == stats.cache_misses

    def test_iteration_stats_have_timings(self, linked):
        result, _ = linked
        assert all(stats.seconds >= 0.0 for stats in result.iterations)


class TestFilteringCounters:
    """Counter semantics of the candidate-pruning engine (default-on)."""

    @pytest.fixture(scope="class")
    def filtered_and_plain(self):
        series = generate_pair(seed=7, initial_households=40)
        old, new = series.datasets
        filtered = link_datasets(old, new, LinkageConfig())
        plain = link_datasets(old, new, LinkageConfig(filtering=False))
        return filtered, plain

    def test_full_calls_mirror_pairs_scored(self, filtered_and_plain):
        """full_agg_sim_calls counts exactly the full Eq. 3 evaluations —
        equal to pairs_scored with and without filtering."""
        for result in filtered_and_plain:
            assert result.profile.value(FULL_AGG_SIM_CALLS) == \
                result.profile.value(PAIRS_SCORED)

    def test_filtering_reduces_full_evaluations(self, filtered_and_plain):
        filtered, plain = filtered_and_plain
        filtered_calls = filtered.profile.value(FULL_AGG_SIM_CALLS)
        plain_calls = plain.profile.value(FULL_AGG_SIM_CALLS)
        assert 0 < filtered_calls < plain_calls
        # The headline promise: at least 2x fewer full evaluations.
        assert plain_calls >= 2 * filtered_calls
        # And strictly fewer full evaluations than candidate pairs.
        assert filtered_calls < filtered.profile.value("candidate_pairs")

    def test_prune_counters_attribute_the_decisions(self, filtered_and_plain):
        filtered, plain = filtered_and_plain
        profile = filtered.profile
        pruned = (
            profile.value(PAIRS_PRUNED_LENGTH)
            + profile.value(PAIRS_PRUNED_QGRAM)
            + profile.value(PAIRS_PRUNED_EARLY_EXIT)
        )
        assert pruned > 0
        # Default ω2 has q-gram and exact attributes only, so the q-gram
        # count filter and the early exit do the work; the length filter
        # only engages for edit-distance comparators.
        assert profile.value(PAIRS_PRUNED_QGRAM) > 0
        assert profile.value(PAIRS_PRUNED_EARLY_EXIT) > 0
        assert profile.value(PAIRS_PRUNED_LENGTH) == 0
        # The unfiltered run records no pruning at all.
        for name in (PAIRS_PRUNED_LENGTH, PAIRS_PRUNED_QGRAM,
                     PAIRS_PRUNED_EARLY_EXIT):
            assert plain.profile.value(name) == 0

    def test_filtering_stage_timer_present(self, filtered_and_plain):
        filtered, plain = filtered_and_plain
        assert "filtering" in filtered.profile.stages
        assert "filtering" not in plain.profile.stages

    def test_mappings_identical_to_unfiltered(self, filtered_and_plain):
        filtered, plain = filtered_and_plain
        assert sorted(filtered.record_mapping.pairs()) == \
            sorted(plain.record_mapping.pairs())
        assert sorted(filtered.group_mapping.pairs()) == \
            sorted(plain.group_mapping.pairs())
