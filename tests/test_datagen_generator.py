"""Tests for census series generation and its ground truth."""

import pytest

import repro.model.roles as R
from repro.datagen.generator import (
    CensusSeries,
    GeneratorConfig,
    generate_pair,
    generate_series,
)


class TestGeneratorConfig:
    def test_years(self):
        config = GeneratorConfig(start_year=1851, num_snapshots=3, interval=10)
        assert config.years == [1851, 1861, 1871]

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(num_snapshots=0)
        with pytest.raises(ValueError):
            GeneratorConfig(interval=0)
        with pytest.raises(ValueError):
            GeneratorConfig(initial_households=0)


class TestGenerateSeries:
    def test_snapshot_years(self, small_series):
        assert small_series.years == [1851, 1861, 1871]

    def test_datasets_validate(self, small_series):
        for dataset in small_series.datasets:
            dataset.validate()

    def test_record_ids_unique_per_year(self, small_series):
        for dataset in small_series.datasets:
            assert len(dataset.record_ids) == len(set(dataset.record_ids))

    def test_roles_present(self, small_series):
        dataset = small_series.datasets[0]
        roles = {record.role for record in dataset.iter_records()}
        assert R.HEAD in roles
        assert roles <= R.ALL_ROLES

    def test_every_household_has_a_head(self, small_series):
        for dataset in small_series.datasets:
            for household in dataset.iter_households():
                assert household.head() is not None

    def test_entity_ids_carried(self, small_series):
        dataset = small_series.datasets[0]
        for record in dataset.iter_records():
            assert record.entity_id is not None

    def test_determinism(self):
        config = GeneratorConfig(seed=5, num_snapshots=2, initial_households=40)
        first = generate_series(config)
        second = generate_series(config)
        for ds1, ds2 in zip(first.datasets, second.datasets):
            assert ds1.record_ids == ds2.record_ids
            assert [r for r in ds1.iter_records()] == [
                r for r in ds2.iter_records()
            ]

    def test_different_seeds_differ(self):
        first = generate_series(GeneratorConfig(seed=1, num_snapshots=1,
                                                initial_households=40))
        second = generate_series(GeneratorConfig(seed=2, num_snapshots=1,
                                                 initial_households=40))
        names_first = [r.full_name for r in first.datasets[0].iter_records()]
        names_second = [r.full_name for r in second.datasets[0].iter_records()]
        assert names_first != names_second

    def test_dataset_lookup(self, small_series):
        assert small_series.dataset(1861).year == 1861
        with pytest.raises(KeyError):
            small_series.dataset(1999)

    def test_successive_pairs(self, small_series):
        pairs = small_series.successive_pairs()
        assert len(pairs) == 2
        assert pairs[0][0].year == 1851 and pairs[0][1].year == 1861


class TestCalibration:
    def test_population_grows(self, small_series):
        sizes = [len(dataset) for dataset in small_series.datasets]
        assert sizes[-1] > sizes[0]

    def test_household_size_plausible(self, small_series):
        stats = small_series.datasets[0].stats()
        average = stats.num_records / stats.num_households
        assert 3.0 < average < 7.0

    def test_missing_ratio_in_paper_range(self, small_series):
        for dataset in small_series.datasets:
            ratio = dataset.stats().missing_value_ratio
            assert 0.01 < ratio < 0.12

    def test_name_ambiguity_present(self, small_series):
        stats = small_series.datasets[-1].stats()
        assert stats.average_name_frequency > 1.2


class TestGeneratePair:
    def test_two_snapshots(self):
        series = generate_pair(seed=3, initial_households=40)
        assert series.years == [1871, 1881]

    def test_ground_truth_follows(self):
        series = generate_pair(seed=3, initial_households=40)
        truth = series.ground_truth.record_mapping(1871, 1881)
        assert len(truth) > 0
